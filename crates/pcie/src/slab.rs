//! Flyweight TLP storage: a generation-checked slab so in-flight packets
//! travel through the event queue as an 8-byte handle instead of a full
//! [`Tlp`] (24+ bytes of header plus a heap-backed payload handle).
//!
//! The event engine's timing wheel moves entries between levels as time
//! advances (cascades); keeping the event payload small keeps those moves
//! cheap and keeps the whole wheel cache-resident. The slab also removes
//! the last reason for the fabric to clone a TLP on the hot path: the
//! packet is inserted once when the wire reserves its arrival slot and
//! taken out exactly once at delivery.
//!
//! Handles are generation-checked exactly like the event queue's
//! [`EventId`](tca_sim::EventId): a slot's generation bumps on every
//! release, so a stale or forged handle is detected (panic — unlike event
//! cancellation this is an internal invariant, not a user-facing API) and
//! an ABA reuse cannot alias a different packet.

use crate::tlp::Tlp;

/// Opaque handle to a TLP parked in a [`TlpSlab`]. Encodes a slot index
/// and the slot generation observed at insertion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TlpHandle(u64);

impl TlpHandle {
    fn encode(idx: u32, gen: u32) -> Self {
        TlpHandle((u64::from(gen) << 32) | u64::from(idx))
    }

    fn decode(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

struct Slot {
    gen: u32,
    tlp: Option<Tlp>,
}

/// Generation-checked arena for in-flight TLPs. Slots are recycled through
/// a free list, so a fabric in steady state allocates nothing here: the
/// slab grows to the peak number of simultaneously in-flight packets and
/// then reuses those slots forever.
#[derive(Default)]
pub struct TlpSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl TlpSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks `tlp` and returns its handle. O(1); allocates only when the
    /// number of simultaneously in-flight TLPs reaches a new peak.
    pub fn insert(&mut self, tlp: Tlp) -> TlpHandle {
        if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize];
            debug_assert!(s.tlp.is_none());
            s.tlp = Some(tlp);
            TlpHandle::encode(idx, s.gen)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("TlpSlab overflow");
            self.slots.push(Slot {
                gen: 0,
                tlp: Some(tlp),
            });
            TlpHandle::encode(idx, 0)
        }
    }

    /// Reads the parked TLP without consuming it (flight-recorder capture).
    ///
    /// # Panics
    /// On a stale or forged handle — every handle is created by the fabric
    /// and consumed exactly once, so a failed check is an internal bug.
    pub fn get(&self, h: TlpHandle) -> &Tlp {
        let (idx, gen) = h.decode();
        let s = &self.slots[idx as usize];
        assert_eq!(s.gen, gen, "stale TlpHandle");
        s.tlp.as_ref().expect("TlpHandle already taken")
    }

    /// Removes and returns the parked TLP, releasing the slot for reuse
    /// (its generation bumps, invalidating any copies of the handle).
    ///
    /// # Panics
    /// On a stale or forged handle, as for [`TlpSlab::get`].
    pub fn take(&mut self, h: TlpHandle) -> Tlp {
        let (idx, gen) = h.decode();
        let s = &mut self.slots[idx as usize];
        assert_eq!(s.gen, gen, "stale TlpHandle");
        let tlp = s.tlp.take().expect("TlpHandle already taken");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
        tlp
    }

    /// Number of TLPs currently parked.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no TLPs are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip_preserves_the_packet() {
        let mut slab = TlpSlab::new();
        let original = Tlp::write(0x1000, vec![1, 2, 3]);
        let digest = original.digest();
        let h = slab.insert(original);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(h).digest(), digest);
        let t = slab.take(h);
        assert_eq!(t.digest(), digest);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut slab = TlpSlab::new();
        for i in 0..100u64 {
            let packet = Tlp::write(i * 8, vec![i as u8]);
            let digest = packet.digest();
            let h = slab.insert(packet);
            assert_eq!(slab.take(h).digest(), digest);
        }
        assert_eq!(slab.slots.len(), 1, "one slot reused 100 times");
    }

    #[test]
    #[should_panic(expected = "stale TlpHandle")]
    fn stale_handle_is_rejected_after_slot_reuse() {
        let mut slab = TlpSlab::new();
        let h = slab.insert(Tlp::write(0, vec![0]));
        slab.take(h);
        let _h2 = slab.insert(Tlp::write(8, vec![1]));
        slab.get(h);
    }
}
