//! Sparse byte-addressable memory.
//!
//! Device memories in the model hold *real bytes* so end-to-end data
//! integrity is testable, but a 6 GB GPU obviously cannot be backed by a
//! dense allocation. [`PageMemory`] materializes 4 KiB pages on first touch
//! and reads zeroes from untouched pages, like freshly mapped memory.

use std::collections::HashMap;

/// Page size of the sparse store (also the pinning granularity GPUDirect
/// RDMA uses — "GPU memory at page granularity", §III-C).
pub const PAGE_SIZE: u64 = 4096;

/// A sparse, zero-initialized byte store.
#[derive(Default)]
pub struct PageMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PageMemory {
    /// New empty memory.
    pub fn new() -> Self {
        PageMemory::default()
    }

    /// Number of materialized pages (for memory-footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut cur = addr;
        let mut rest = data;
        while !rest.is_empty() {
            let page = cur / PAGE_SIZE;
            let off = (cur % PAGE_SIZE) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            p[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            cur += n as u64;
        }
    }

    /// Reads `len` bytes starting at `addr`; untouched pages read as zero.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Reads into a caller-provided buffer.
    pub fn read_into(&self, addr: u64, out: &mut [u8]) {
        let mut cur = addr;
        let mut rest: &mut [u8] = out;
        while !rest.is_empty() {
            let page = cur / PAGE_SIZE;
            let off = (cur % PAGE_SIZE) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            if let Some(p) = self.pages.get(&page) {
                rest[..n].copy_from_slice(&p[off..off + n]);
            } else {
                rest[..n].fill(0);
            }
            rest = &mut rest[n..];
            cur += n as u64;
        }
    }

    /// Reads one little-endian `u32` (PIO poll granularity).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_into(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Reads one little-endian `u64` (descriptor fields).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes one little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Writes one little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Fills `[addr, addr+len)` with a byte pattern derived from the address
    /// (used by tests and benches to build verifiable payloads cheaply).
    pub fn fill_pattern(&mut self, addr: u64, len: u64, seed: u8) {
        let mut buf = vec![0u8; len.min(1 << 20) as usize];
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let n = buf.len().min((end - cur) as usize);
            for (i, b) in buf[..n].iter_mut().enumerate() {
                let a = cur + i as u64;
                *b = (a as u8) ^ ((a >> 8) as u8).wrapping_mul(31) ^ seed;
            }
            self.write(cur, &buf[..n]);
            cur += n as u64;
        }
    }

    /// Verifies a region against [`PageMemory::fill_pattern`]'s output;
    /// returns the first mismatching address.
    pub fn verify_pattern(&self, addr: u64, len: u64, seed: u8) -> Result<(), u64> {
        let data = self.read(addr, len as usize);
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            let expect = (a as u8) ^ ((a >> 8) as u8).wrapping_mul(31) ^ seed;
            if b != expect {
                return Err(a);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_first_touch() {
        let m = PageMemory::new();
        assert_eq!(m.read(0x1234, 8), vec![0; 8]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = PageMemory::new();
        m.write(100, b"hello world");
        assert_eq!(m.read(100, 11), b"hello world");
        assert_eq!(m.read(99, 13)[1..12], *b"hello world");
        assert_eq!(m.read(99, 13)[0], 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PageMemory::new();
        let addr = PAGE_SIZE - 3;
        m.write(addr, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.read(addr, 6), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sparse_footprint() {
        let mut m = PageMemory::new();
        // Touch two pages 5 GiB apart — must stay tiny.
        m.write(0, &[1]);
        m.write(5 << 30, &[2]);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read(5 << 30, 1), vec![2]);
    }

    #[test]
    fn scalar_accessors() {
        let mut m = PageMemory::new();
        m.write_u32(8, 0xdead_beef);
        assert_eq!(m.read_u32(8), 0xdead_beef);
        m.write_u64(16, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(16), 0x0123_4567_89ab_cdef);
        // Little-endian byte order.
        assert_eq!(m.read(8, 1), vec![0xef]);
    }

    #[test]
    fn scalar_across_page_boundary() {
        let mut m = PageMemory::new();
        m.write_u64(PAGE_SIZE - 4, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(PAGE_SIZE - 4), 0x1122_3344_5566_7788);
    }

    #[test]
    fn pattern_fill_and_verify() {
        let mut m = PageMemory::new();
        m.fill_pattern(0x10_0000, 64 * 1024, 7);
        assert!(m.verify_pattern(0x10_0000, 64 * 1024, 7).is_ok());
        assert!(m.verify_pattern(0x10_0000, 64 * 1024, 8).is_err());
        // Corrupt one byte and detect exactly it.
        let mut byte = m.read(0x10_0042, 1);
        byte[0] ^= 0xff;
        m.write(0x10_0042, &byte);
        assert_eq!(m.verify_pattern(0x10_0000, 64 * 1024, 7), Err(0x10_0042));
    }

    #[test]
    fn pattern_is_position_dependent() {
        let mut m = PageMemory::new();
        m.fill_pattern(0, 4096, 0);
        let d = m.read(0, 4096);
        // Not all bytes equal (catches trivially constant patterns).
        assert!(d.iter().any(|&b| b != d[0]));
    }
}
