//! The PCIe fabric: topology, transmission, flow control, dispatch loop.
//!
//! A [`Fabric`] owns every device and link of a simulated system (one node,
//! or a whole TCA sub-cluster plus its InfiniBand network). It is the only
//! piece of code that moves packets: devices hand TLPs to their ports via
//! [`Ctx::send`](crate::Ctx::send), the fabric serializes them onto the
//! wire, enforces receiver credits, and delivers them to the peer device
//! after serialization + propagation time.
//!
//! Transmission rules per link direction:
//! * the wire serializes one packet at a time (store-and-forward);
//! * posted/non-posted requests share one FIFO, completions have their own
//!   FIFO that can bypass stalled requests (PCIe ordering rule, and the
//!   classic deadlock avoidance);
//! * a packet needs receiver credits before it may start serializing;
//!   credits return after the receiver consumes the packet (or later, if
//!   the receiving device holds them to model finite internal buffers).

use crate::device::{Action, CreditHold, Ctx, Device};
use crate::flow::CreditState;
use crate::link::{LinkParams, WireState};
use crate::slab::{TlpHandle, TlpSlab};
use crate::tlp::{DeviceId, Dir, FcClass, PortIdx, Tlp, TlpKind};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use tca_sim::metrics::{CounterId, GaugeId, MeterId};
use tca_sim::{
    Dur, EventQueue, FlightRecorder, Fnv64, MetricsHub, MetricsSnapshot, Sampler, SimRng, SimTime,
    SpanStore, StallReport, TraceLevel, Tracer, Watchdog,
};

/// Identifier of a link within the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

/// A configuration error observed while the fabric was running. These are
/// *software/config* mistakes (wrong routing table, missing cable), not
/// internal invariant violations: the offending packet is dropped, the
/// error is recorded, and the simulation keeps running so a verifier can
/// report every problem in one pass instead of dying on the first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// A device handed a TLP to a port with no link attached.
    UnconnectedPort {
        /// The sending device.
        device: DeviceId,
        /// The port the TLP was submitted on.
        port: PortIdx,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnconnectedPort { device, port } => {
                write!(f, "send on unconnected port dev{}:{port:?}", device.0)
            }
        }
    }
}

/// One queued fabric event. Kept small (16 bytes of payload) on purpose:
/// the timing wheel moves entries between levels as time advances, and a
/// `Deliver` carries only a [`TlpHandle`] into the fabric's [`TlpSlab`] —
/// the packet itself is parked once at transmit and taken at delivery,
/// never cloned and never dragged through the wheel.
enum Ev {
    Deliver {
        link: u32,
        dir: Dir,
        tlp: TlpHandle,
    },
    Timer {
        dst: DeviceId,
        tag: u64,
    },
    CreditReturn {
        link: u32,
        dir: Dir,
        class: FcClass,
        hdr: u32,
        data: u32,
    },
}

/// The kind of event one [`Fabric::step_kind`] call dispatched. Public
/// mirror of the private event enum, so the `tca-bench` profiler can
/// bucket host time per event kind without the fabric ever touching a
/// wall clock itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// A TLP arrived at a device.
    Deliver,
    /// A device timer fired.
    Timer,
    /// Flow-control credits returned to a link direction.
    CreditReturn,
}

impl StepKind {
    /// Stable lowercase name (JSON / folded-stack frame label).
    pub fn name(self) -> &'static str {
        match self {
            StepKind::Deliver => "deliver",
            StepKind::Timer => "timer",
            StepKind::CreditReturn => "credit_return",
        }
    }
}

/// Host-side dispatch counters of one fabric (`tca-prof` layer one).
/// Plain integers bumped inside [`Fabric::step`] and the transmit path;
/// like [`tca_sim::ProfCounters`] they never schedule events and cannot
/// perturb the event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricProf {
    /// `Ev::Deliver` events dispatched.
    pub deliver_events: u64,
    /// `Ev::Timer` events dispatched.
    pub timer_events: u64,
    /// `Ev::CreditReturn` events dispatched.
    pub credit_return_events: u64,
    /// Wire reservations made by the transmit path, replays included
    /// (each one serializes a TLP onto a link hop).
    pub tlp_transmits: u64,
}

impl FabricProf {
    /// Counter increments since `earlier`.
    pub fn since(&self, earlier: &FabricProf) -> FabricProf {
        FabricProf {
            deliver_events: self.deliver_events - earlier.deliver_events,
            timer_events: self.timer_events - earlier.timer_events,
            credit_return_events: self.credit_return_events - earlier.credit_return_events,
            tlp_transmits: self.tlp_transmits - earlier.tlp_transmits,
        }
    }
}

/// Metric handles of one link direction, registered at [`Fabric::connect`]
/// under `link.{id}.{fwd|rev}.*`.
#[derive(Clone, Copy)]
struct DirMetrics {
    tlps: CounterId,
    wire_bytes: MeterId,
    wire_busy_ns: CounterId,
    credit_stall_ns: CounterId,
    replays: CounterId,
    queue_depth: GaugeId,
    /// Header credits currently consumed across all three FC classes
    /// (initial advertisement minus available), refreshed at sample time.
    credits_in_use: GaugeId,
}

struct LinkDir {
    wire: WireState,
    credits: CreditState,
    /// Posted + non-posted requests blocked on credits, in order, each with
    /// its enqueue instant (so dequeue can attribute the credit stall).
    reqq: VecDeque<(SimTime, Tlp)>,
    /// Completions blocked on credits; may bypass blocked requests.
    cplq: VecDeque<(SimTime, Tlp)>,
    /// Total time packets spent queued waiting for credits.
    credit_stall: Dur,
    m: DirMetrics,
}

struct LinkState {
    params: LinkParams,
    /// `ends[0]` and `ends[1]`; direction `d` flows from `ends[d]` to
    /// `ends[1-d]`.
    ends: [(DeviceId, PortIdx); 2],
    dirs: [LinkDir; 2],
}

/// Aggregate counters for one link direction.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkDirStats {
    /// Total bytes pushed on the wire (payload + protocol overhead).
    pub wire_bytes: u64,
    /// Packets transmitted.
    pub packets: u64,
    /// Packets currently queued waiting for credits.
    pub queued: usize,
    /// Link-level replays (corrupted TLPs retransmitted by the DLL).
    pub replays: u64,
    /// Accumulated wire occupancy (serialization time, replays included).
    pub wire_busy: Dur,
    /// Accumulated time packets spent queued waiting for receiver credits.
    pub credit_stall: Dur,
}

/// The simulated PCIe fabric.
pub struct Fabric {
    queue: EventQueue<Ev>,
    devices: Vec<Box<dyn Device>>,
    ports: HashMap<(DeviceId, PortIdx), (u32, Dir)>,
    links: Vec<LinkState>,
    tracer: Tracer,
    metrics: MetricsHub,
    /// Causal span trees of in-flight and completed transfers.
    spans: SpanStore,
    /// Drives link-error injection (PEARL replays); deterministic.
    rng: SimRng,
    /// Configuration errors observed while running (packets dropped).
    config_errors: Vec<ConfigError>,
    /// Periodic gauge recorder; `None` unless sampling is enabled.
    sampler: Option<Sampler>,
    /// Progress watchdog; `None` unless armed.
    watchdog: Option<Watchdog>,
    /// Host-side dispatch counters (`tca-prof` layer one).
    prof: FabricProf,
    /// Flight recorder; `None` unless enabled.
    flight: Option<FlightRecorder>,
    /// In-flight TLP storage; `Ev::Deliver` carries handles into it.
    tlps: TlpSlab,
    /// Reusable action buffer lent to each [`Ctx`]; drained and returned
    /// after every handler so steady-state dispatch allocates nothing.
    action_scratch: Vec<Action>,
    /// Reusable same-timestamp event batch for [`Fabric::run_until_idle`].
    batch_buf: Vec<Ev>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Fabric {
            queue: EventQueue::new(),
            devices: Vec::new(),
            ports: HashMap::new(),
            links: Vec::new(),
            tracer: Tracer::default(),
            metrics: MetricsHub::new(),
            spans: SpanStore::new(),
            rng: SimRng::seed_from_u64(0x7ca_2013),
            config_errors: Vec::new(),
            sampler: None,
            watchdog: None,
            prof: FabricProf::default(),
            flight: None,
            tlps: TlpSlab::new(),
            action_scratch: Vec::new(),
            batch_buf: Vec::new(),
        }
    }

    /// Reseeds the error-injection stream (determinism is per seed).
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::seed_from_u64(seed);
    }

    /// Enables tracing at `level`, keeping the most recent `capacity` lines.
    pub fn set_trace(&mut self, level: TraceLevel, capacity: usize) {
        self.tracer = Tracer::new(level, capacity);
    }

    /// Renders the retained trace.
    pub fn dump_trace(&self) -> String {
        self.tracer.dump()
    }

    /// Renders the retained trace as Chrome trace-event JSON (`ph`/`ts`/
    /// `name` fields, timestamps in microseconds), loadable in Perfetto or
    /// `chrome://tracing`. When span tracing is on, the causal span trees
    /// are appended as complete (`"X"`) events plus cross-device flow
    /// (`"s"`/`"f"`) arrows in the same array; when sampling is enabled,
    /// every gauge series is appended as counter (`"C"`) events so the
    /// occupancy curves render under the spans.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = self.tracer.chrome_trace_json();
        if !self.spans.is_empty() {
            out = Self::splice_json_arrays(out, self.spans.chrome_trace_json());
        }
        if let Some(s) = &self.sampler {
            out = Self::splice_json_arrays(out, s.chrome_counter_events_json());
        }
        out
    }

    /// Concatenates two JSON array strings into one array.
    fn splice_json_arrays(a: String, b: String) -> String {
        match (a.as_str(), b.as_str()) {
            ("[]", _) => b,
            (_, "[]") => a,
            _ => format!("{},{}", &a[..a.len() - 1], &b[1..]),
        }
    }

    /// Enables periodic gauge sampling at `period` of simulated time.
    /// Sampling is driven by the event queue (captures happen between
    /// events, never *as* events), so it cannot shift a single timestamp;
    /// see [`Sampler`]. Re-enabling replaces any previous series.
    pub fn enable_sampling(&mut self, period: Dur) {
        self.sampler = Some(Sampler::new(period));
    }

    /// The gauge time-series recorder, when sampling is enabled.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Arms the progress watchdog: if no DRAM commit or interrupt is
    /// delivered for `window` of simulated time — or the event queue drains
    /// with TLPs still blocked on credits — the watchdog captures a
    /// [`StallReport`] diagnosing the stalled links and engines. Pure
    /// observation: arming it never schedules events.
    pub fn arm_watchdog(&mut self, window: Dur) {
        self.watchdog = Some(Watchdog::new(window));
    }

    /// The armed watchdog, if any.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// The stall report, when the armed watchdog has fired.
    pub fn stall_report(&self) -> Option<&StallReport> {
        self.watchdog.as_ref().and_then(|w| w.report())
    }

    /// Enables the deterministic flight recorder, keeping the most recent
    /// `ring_capacity` dispatched events; with `spill`, events evicted
    /// from the ring are retained as pre-serialized JSONL lines so the
    /// full log survives. Like the sampler and watchdog, the recorder is
    /// a pure data sink driven from the dispatch loop — it never schedules
    /// events and never reads a wall clock, so a recorded run replays the
    /// exact event stream of an unrecorded one (proven byte-for-byte by
    /// `tests/determinism.rs`). Re-enabling replaces any previous log.
    pub fn enable_flight(&mut self, ring_capacity: usize, spill: bool) {
        self.flight = Some(if spill {
            FlightRecorder::with_spill(ring_capacity)
        } else {
            FlightRecorder::new(ring_capacity)
        });
    }

    /// The flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The full flight log as `tca-flight/v1` JSONL — header, event lines,
    /// then the run's span records (so span trees can be bisected from the
    /// log alone) — or `None` when recording is off.
    pub fn flight_jsonl(&self) -> Option<String> {
        let fl = self.flight.as_ref()?;
        let mut out = fl.jsonl();
        out.push_str(&self.spans.jsonl());
        Some(out)
    }

    /// Enables or disables causal span tracing. Packets launched while
    /// disabled carry no [`tca_sim::TraceCtx`], and the store never
    /// schedules events, so this flag cannot shift simulated time.
    pub fn set_span_tracing(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
    }

    /// Read access to the recorded span trees.
    pub fn spans(&self) -> &SpanStore {
        &self.spans
    }

    /// Write access to the span store, for host-side code (drivers,
    /// harnesses) that opens transfer roots from outside the event loop.
    pub fn spans_mut(&mut self) -> &mut SpanStore {
        &mut self.spans
    }

    /// Read access to the always-on metrics registry.
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Write access to the metrics registry, for host-side code (drivers,
    /// harnesses) that records fabric-scoped metrics such as interrupt
    /// latency. Recording metrics never schedules events, so instrumented
    /// and uninstrumented runs execute identically.
    pub fn metrics_mut(&mut self) -> &mut MetricsHub {
        &mut self.metrics
    }

    /// Takes a deterministic, name-sorted snapshot of every metric. Devices
    /// first publish their internal collectors via
    /// [`Device::publish_metrics`]; the snapshot is a pure read of simulated
    /// state and never advances time.
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        for dev in &mut self.devices {
            dev.publish_metrics(&mut self.metrics);
        }
        self.metrics.snapshot()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events executed (diagnostic).
    pub fn events_executed(&self) -> u64 {
        self.queue.events_executed()
    }

    /// Adds a device built by `f`, which receives the id the device will
    /// have (devices embed their id so they can stamp requester fields).
    pub fn add_device<D: Device, F: FnOnce(DeviceId) -> D>(&mut self, f: F) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Box::new(f(id)));
        id
    }

    /// Connects `a` and `b` with a link. Each `(device, port)` pair may be
    /// connected at most once.
    #[track_caller]
    pub fn connect(
        &mut self,
        a: (DeviceId, PortIdx),
        b: (DeviceId, PortIdx),
        params: LinkParams,
    ) -> LinkId {
        assert!(a != b, "cannot connect a port to itself");
        let id = self.links.len() as u32;
        for (end, pt) in [(Dir::Fwd, a), (Dir::Rev, b)] {
            assert!(
                (pt.0 .0 as usize) < self.devices.len(),
                "unknown device {:?}",
                pt.0
            );
            let prev = self.ports.insert(pt, (id, end));
            assert!(prev.is_none(), "port {pt:?} already connected");
        }
        let metrics = &mut self.metrics;
        let mut mk_dir = |dir: Dir| {
            let p = format!("link.{id}.{dir}");
            LinkDir {
                wire: WireState::default(),
                credits: CreditState::from_params(&params),
                reqq: VecDeque::new(),
                cplq: VecDeque::new(),
                credit_stall: Dur::ZERO,
                m: DirMetrics {
                    tlps: metrics.counter(format!("{p}.tlps")),
                    wire_bytes: metrics.meter(format!("{p}.wire_bytes")),
                    wire_busy_ns: metrics.counter(format!("{p}.wire_busy_ns")),
                    credit_stall_ns: metrics.counter(format!("{p}.credit_stall_ns")),
                    replays: metrics.counter(format!("{p}.replays")),
                    queue_depth: metrics.gauge(format!("{p}.queue_depth")),
                    credits_in_use: metrics.gauge(format!("{p}.credits_in_use")),
                },
            }
        };
        self.links.push(LinkState {
            params,
            ends: [a, b],
            dirs: [mk_dir(Dir::Fwd), mk_dir(Dir::Rev)],
        });
        LinkId(id)
    }

    /// The registered name of a device (report/diagnosis convenience).
    pub fn device_name(&self, id: DeviceId) -> &str {
        self.devices[id.0 as usize].name()
    }

    /// Immutable typed access to a device.
    #[track_caller]
    pub fn device<T: Device>(&self, id: DeviceId) -> &T {
        let d: &dyn Any = self.devices[id.0 as usize].as_ref();
        d.downcast_ref::<T>().expect("device type mismatch")
    }

    /// Mutable typed access to a device (for configuration between steps;
    /// use [`Fabric::drive`] when the mutation needs to emit packets).
    #[track_caller]
    pub fn device_mut<T: Device>(&mut self, id: DeviceId) -> &mut T {
        let d: &mut dyn Any = self.devices[id.0 as usize].as_mut();
        d.downcast_mut::<T>().expect("device type mismatch")
    }

    /// Runs `f` against a device with a live [`Ctx`], so host software
    /// models (drivers, benchmark harnesses) can inject stores, doorbells
    /// and timers from outside the event loop.
    #[track_caller]
    pub fn drive<T: Device, R>(
        &mut self,
        id: DeviceId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut ctx = Ctx {
            now: self.queue.now(),
            self_id: id,
            actions: std::mem::take(&mut self.action_scratch),
            delivery_credits: None,
            progress: false,
            tracer: &mut self.tracer,
            spans: &mut self.spans,
        };
        let dev: &mut dyn Any = self.devices[id.0 as usize].as_mut();
        let dev = dev.downcast_mut::<T>().expect("device type mismatch");
        let r = f(dev, &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        debug_assert!(ctx.delivery_credits.is_none());
        self.apply_actions(id, &mut actions);
        self.action_scratch = actions;
        r
    }

    /// Number of links in the fabric.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Per-direction link statistics; [`Dir::Fwd`] flows from the first
    /// endpoint passed to [`Fabric::connect`] to the second.
    pub fn link_stats(&self, link: LinkId, dir: Dir) -> LinkDirStats {
        let d = &self.links[link.0 as usize].dirs[dir.index()];
        LinkDirStats {
            wire_bytes: d.wire.wire_bytes,
            packets: d.wire.packets,
            queued: d.reqq.len() + d.cplq.len(),
            replays: d.wire.replays,
            wire_busy: d.wire.busy_time,
            credit_stall: d.credit_stall,
        }
    }

    /// The link and transmit direction a device port is attached to, if
    /// connected. Lets upper layers (the PEACH2 firmware's register file)
    /// map their local port numbering onto fabric link statistics.
    pub fn port_link(&self, dev: DeviceId, port: PortIdx) -> Option<(LinkId, Dir)> {
        self.ports
            .get(&(dev, port))
            .map(|&(link, dir)| (LinkId(link), dir))
    }

    /// The parameters a link was connected with (read-only introspection
    /// for static analysis: credit sizing, latency, payload limits).
    pub fn link_params(&self, link: LinkId) -> &LinkParams {
        &self.links[link.0 as usize].params
    }

    /// The two `(device, port)` endpoints of a link, in [`Dir::Fwd`] order
    /// (`[0]` is the first endpoint passed to [`Fabric::connect`]).
    pub fn link_endpoints(&self, link: LinkId) -> [(DeviceId, PortIdx); 2] {
        self.links[link.0 as usize].ends
    }

    /// Configuration errors observed while running, in occurrence order.
    /// Empty on a correctly configured fabric; each entry corresponds to a
    /// dropped packet (see [`ConfigError`]).
    pub fn config_errors(&self) -> &[ConfigError] {
        &self.config_errors
    }

    /// Executes events until the queue drains; returns the final time.
    /// With the watchdog armed, a drain that leaves TLPs blocked on credits
    /// (a permanently starved link — nothing left to pump them) fires the
    /// watchdog with a diagnosis instead of returning silently.
    ///
    /// The drain is batched: [`EventQueue::pop_run`] detaches every event
    /// sharing the earliest timestamp in one queue operation, and the batch
    /// dispatches back-to-back. Dispatch order is exactly the single-step
    /// order (a slot list is stored in sequence order, and events a handler
    /// schedules at the *same* instant get larger sequence numbers, so they
    /// surface in the next batch precisely where `step` would pop them);
    /// the flight recorder and watchdog still run per event, and the
    /// sampler runs once per batch — equivalent to once per event, since no
    /// sample grid point can fall strictly *before* a timestamp the batch
    /// is already at.
    pub fn run_until_idle(&mut self) -> SimTime {
        let mut batch = std::mem::take(&mut self.batch_buf);
        loop {
            self.sample_pending();
            if self.queue.pop_run(&mut batch).is_none() {
                break;
            }
            for ev in batch.drain(..) {
                self.record_flight(&ev);
                self.dispatch(ev);
                self.check_watchdog();
            }
        }
        self.batch_buf = batch;
        self.check_drained_stall();
        self.queue.now()
    }

    /// Executes events with timestamps `<= deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Executes one event. Returns `false` when the queue is idle.
    pub fn step(&mut self) -> bool {
        self.step_kind().is_some()
    }

    /// Executes one event and reports its kind (`None` when idle). The
    /// profiling entry point: a harness can wrap each call in its own
    /// wall-clock timer and bucket host time per event kind, while the
    /// fabric itself stays wall-clock-free.
    pub fn step_kind(&mut self) -> Option<StepKind> {
        self.sample_pending();
        let (_, ev) = self.queue.pop()?;
        self.record_flight(&ev);
        let kind = self.dispatch(ev);
        self.check_watchdog();
        Some(kind)
    }

    /// Executes one already-popped event (shared by the single-step and
    /// batched drivers) and reports its kind.
    fn dispatch(&mut self, ev: Ev) -> StepKind {
        match ev {
            Ev::Deliver { link, dir, tlp } => {
                self.prof.deliver_events += 1;
                let tlp = self.tlps.take(tlp);
                self.deliver(link, dir, tlp);
                StepKind::Deliver
            }
            Ev::Timer { dst, tag } => {
                self.prof.timer_events += 1;
                self.dispatch_timer(dst, tag);
                StepKind::Timer
            }
            Ev::CreditReturn {
                link,
                dir,
                class,
                hdr,
                data,
            } => {
                self.prof.credit_return_events += 1;
                self.links[link as usize].dirs[dir.index()]
                    .credits
                    .replenish(class, hdr, data);
                self.pump_link(link, dir);
                StepKind::CreditReturn
            }
        }
    }

    /// Host-side dispatch counters accumulated since construction.
    pub fn prof(&self) -> FabricProf {
        self.prof
    }

    /// Host-side counters of the underlying event queue (pushes, pops,
    /// cancels, wheel cascades, peak pending depth).
    pub fn queue_prof(&self) -> tca_sim::ProfCounters {
        *self.queue.prof()
    }

    /// Number of events currently pending in the queue. Exact: the timing
    /// wheel unlinks cancelled entries eagerly, so there is no tombstone
    /// residue to subtract.
    pub fn queue_depth(&self) -> usize {
        self.queue.pending()
    }

    /// Appends the just-popped event to the flight recorder, if enabled.
    /// Runs between pop and dispatch so the log order *is* the dispatch
    /// order; pure data capture — nothing here schedules events or touches
    /// link state, so recording cannot shift simulated time.
    fn record_flight(&mut self, ev: &Ev) {
        let Some(fl) = &mut self.flight else {
            return;
        };
        let at = self.queue.now();
        match ev {
            Ev::Deliver { link, dir, tlp } => {
                let (dst, port) = self.links[*link as usize].ends[dir.flip().index()];
                let tlp = self.tlps.get(*tlp);
                fl.record(
                    at,
                    StepKind::Deliver.name(),
                    dst.0,
                    Some(port.0),
                    tlp.span.map(|s| s.root.raw()),
                    tlp.digest(),
                    format!("{tlp:?}"),
                );
            }
            Ev::Timer { dst, tag } => {
                let label = match self.devices[dst.0 as usize].timer_kind(*tag) {
                    Some(kind) => format!("{kind} tag={tag:#x}"),
                    None => format!("timer tag={tag:#x}"),
                };
                fl.record(at, StepKind::Timer.name(), dst.0, None, None, *tag, label);
            }
            Ev::CreditReturn {
                link,
                dir,
                class,
                hdr,
                data,
            } => {
                let (src, port) = self.links[*link as usize].ends[dir.index()];
                let digest = Fnv64::new()
                    .write_u64(u64::from(*link))
                    .write_u64(dir.index() as u64)
                    .write_u64(*class as u64)
                    .write_u64(u64::from(*hdr))
                    .write_u64(u64::from(*data))
                    .finish();
                fl.record(
                    at,
                    StepKind::CreditReturn.name(),
                    src.0,
                    Some(port.0),
                    None,
                    digest,
                    format!("credits link{link}.{dir} {class:?} +{hdr}h/+{data}d"),
                );
            }
        }
    }

    /// Takes every sample due strictly before the next queued event. The
    /// gap between events is already decided when this runs, so capturing
    /// inside it is invisible to the simulation: no event is scheduled and
    /// `now` does not move (captures are timestamped on the sample grid).
    fn sample_pending(&mut self) {
        let Some(mut sampler) = self.sampler.take() else {
            return;
        };
        if let Some(next_event) = self.queue.peek_time() {
            while sampler.due_before(next_event) {
                let at = sampler.next_due();
                self.refresh_live_gauges();
                for dev in &mut self.devices {
                    dev.publish_metrics(&mut self.metrics);
                }
                sampler.capture(at, &self.metrics);
            }
        }
        self.sampler = Some(sampler);
    }

    /// Re-publishes the gauges whose live value only the fabric knows:
    /// queued-TLP depth and consumed header credits per link direction.
    fn refresh_live_gauges(&mut self) {
        for l in &self.links {
            let advertised = CreditState::from_params(&l.params);
            for d in &l.dirs {
                self.metrics
                    .gauge_set(d.m.queue_depth, (d.reqq.len() + d.cplq.len()) as i64);
                let in_use = advertised.posted_hdr.saturating_sub(d.credits.posted_hdr)
                    + advertised
                        .nonposted_hdr
                        .saturating_sub(d.credits.nonposted_hdr)
                    + advertised
                        .completion_hdr
                        .saturating_sub(d.credits.completion_hdr);
                self.metrics.gauge_set(d.m.credits_in_use, in_use as i64);
            }
        }
    }

    /// Fires the watchdog when the no-progress window has elapsed.
    fn check_watchdog(&mut self) {
        let now = self.queue.now();
        if matches!(&self.watchdog, Some(w) if w.expired(now)) {
            let diagnosis = self.stall_diagnosis();
            if let Some(w) = &mut self.watchdog {
                w.fire(now, diagnosis);
            }
        }
    }

    /// Fires the watchdog when the queue drained with TLPs still blocked.
    fn check_drained_stall(&mut self) {
        let armed_quiet = matches!(&self.watchdog, Some(w) if w.report().is_none());
        if !armed_quiet {
            return;
        }
        let stuck = self.links.iter().any(|l| {
            l.dirs
                .iter()
                .any(|d| !d.reqq.is_empty() || !d.cplq.is_empty())
        });
        if stuck {
            let now = self.queue.now();
            let diagnosis = self.stall_diagnosis();
            if let Some(w) = &mut self.watchdog {
                w.fire(now, diagnosis);
            }
        }
    }

    /// Renders what is known about the stall: every link direction with
    /// blocked TLPs and its credit state, the oldest in-flight span, and
    /// each device's self-reported engine state.
    fn stall_diagnosis(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, l) in self.links.iter().enumerate() {
            let advertised = CreditState::from_params(&l.params);
            for dir in [Dir::Fwd, Dir::Rev] {
                let d = &l.dirs[dir.index()];
                let queued = d.reqq.len() + d.cplq.len();
                if queued == 0 {
                    continue;
                }
                let src = l.ends[dir.index()].0;
                let dst = l.ends[dir.flip().index()].0;
                let c = &d.credits;
                writeln!(
                    out,
                    "  link {i}.{dir} {} -> {}: {queued} TLP(s) blocked on credits \
                     (hdr avail P/NP/C {}/{}/{} of {}/{}/{}, data avail P/C {}/{} of {}/{})",
                    self.devices[src.0 as usize].name(),
                    self.devices[dst.0 as usize].name(),
                    c.posted_hdr,
                    c.nonposted_hdr,
                    c.completion_hdr,
                    advertised.posted_hdr,
                    advertised.nonposted_hdr,
                    advertised.completion_hdr,
                    c.posted_data,
                    c.completion_data,
                    advertised.posted_data,
                    advertised.completion_data,
                )
                .expect("write to String");
            }
        }
        let oldest_open = self
            .spans
            .roots()
            .into_iter()
            .filter(|&(_, _, _, end)| end.is_none())
            .min_by_key(|&(_, _, start, _)| start);
        if let Some((_, name, start, _)) = oldest_open {
            writeln!(out, "  oldest in-flight span: `{name}` open since {start}")
                .expect("write to String");
        }
        for dev in &self.devices {
            if let Some(status) = dev.health_status() {
                writeln!(out, "  {}: {status}", dev.name()).expect("write to String");
            }
        }
        if out.is_empty() {
            out.push_str("  (no blocked link queues; all devices silent)\n");
        }
        out
    }

    fn deliver(&mut self, link: u32, dir: Dir, tlp: Tlp) {
        let l = &self.links[link as usize];
        let (dst, port) = l.ends[dir.flip().index()];
        let class = tlp.fc_class();
        let data = tlp.data_credits();
        let credit_delay = l.params.credit_return_delay;
        // Interrupts are forward progress in their own right. Writes count
        // only when the receiving device reports a commit via
        // `Ctx::note_progress` — a chip relaying a packet another hop is
        // NOT progress, or routing loops would keep the watchdog quiet
        // while packets circulate forever without ever landing in DRAM.
        if let Some(w) = &mut self.watchdog {
            if matches!(tlp.kind, TlpKind::Msi { .. }) {
                w.progress(self.queue.now());
            }
        }
        self.tracer.emit(TraceLevel::Packet, self.queue.now(), || {
            format!("deliver {tlp:?} -> dev{}:{port:?}", dst.0)
        });

        let mut ctx = Ctx {
            now: self.queue.now(),
            self_id: dst,
            actions: std::mem::take(&mut self.action_scratch),
            delivery_credits: Some(CreditHold {
                link,
                dir,
                class,
                hdr: 1,
                data,
            }),
            progress: false,
            tracer: &mut self.tracer,
            spans: &mut self.spans,
        };
        self.devices[dst.0 as usize].on_tlp(port, tlp, &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        if ctx.progress {
            if let Some(w) = &mut self.watchdog {
                w.progress(self.queue.now());
            }
        }
        let auto_release = ctx.delivery_credits.take();
        if let Some(hold) = auto_release {
            // Receiver consumed the packet inline; return credits after the
            // receiver-side processing + DLLP turnaround delay.
            self.queue.schedule_in(
                credit_delay,
                Ev::CreditReturn {
                    link: hold.link,
                    dir: hold.dir,
                    class: hold.class,
                    hdr: hold.hdr,
                    data: hold.data,
                },
            );
        }
        self.apply_actions(dst, &mut actions);
        self.action_scratch = actions;
    }

    fn dispatch_timer(&mut self, dst: DeviceId, tag: u64) {
        let mut ctx = Ctx {
            now: self.queue.now(),
            self_id: dst,
            actions: std::mem::take(&mut self.action_scratch),
            delivery_credits: None,
            progress: false,
            tracer: &mut self.tracer,
            spans: &mut self.spans,
        };
        self.devices[dst.0 as usize].on_timer(tag, &mut ctx);
        let mut actions = std::mem::take(&mut ctx.actions);
        if ctx.progress {
            if let Some(w) = &mut self.watchdog {
                w.progress(self.queue.now());
            }
        }
        self.apply_actions(dst, &mut actions);
        self.action_scratch = actions;
    }

    /// Applies a handler's queued actions, draining (but keeping the
    /// capacity of) the borrowed scratch buffer.
    fn apply_actions(&mut self, src: DeviceId, actions: &mut Vec<Action>) {
        for a in actions.drain(..) {
            match a {
                Action::Send { port, tlp } => self.submit(src, port, tlp),
                Action::Timer { delay, tag } => {
                    self.queue.schedule_in(delay, Ev::Timer { dst: src, tag });
                }
                Action::Release { hold } => {
                    self.queue.schedule_in(
                        self.links[hold.link as usize].params.credit_return_delay,
                        Ev::CreditReturn {
                            link: hold.link,
                            dir: hold.dir,
                            class: hold.class,
                            hdr: hold.hdr,
                            data: hold.data,
                        },
                    );
                }
            }
        }
    }

    /// Enqueues `tlp` for transmission from `(src, port)`. A send on an
    /// unconnected port is a *configuration* error (bad routing table,
    /// missing cable), not an internal invariant: the TLP is dropped and
    /// recorded in [`Fabric::config_errors`] so `tca-verify` can surface it
    /// as a diagnostic.
    #[track_caller]
    fn submit(&mut self, src: DeviceId, port: PortIdx, tlp: Tlp) {
        let Some(&(link, end)) = self.ports.get(&(src, port)) else {
            let err = ConfigError::UnconnectedPort { device: src, port };
            self.tracer.emit(TraceLevel::Txn, self.queue.now(), || {
                format!("{err}: dropping {tlp:?}")
            });
            self.config_errors.push(err);
            return;
        };
        let params = self.links[link as usize].params;
        match &tlp.kind {
            TlpKind::MemWrite { data, .. } | TlpKind::Completion { data, .. } => {
                assert!(
                    data.len() as u32 <= params.max_payload,
                    "TLP payload {} exceeds MPS {} on link {link}",
                    data.len(),
                    params.max_payload
                );
            }
            TlpKind::MemRead { len, .. } => {
                assert!(
                    *len <= params.max_read_request,
                    "read request {len} exceeds MRRS {}",
                    params.max_read_request
                );
            }
            TlpKind::Msi { .. } => {}
        }
        let d = &mut self.links[link as usize].dirs[end.index()];
        let is_cpl = tlp.fc_class() == FcClass::Completion;
        let queue_empty = if is_cpl {
            d.cplq.is_empty()
        } else {
            d.reqq.is_empty()
        };
        if queue_empty && d.credits.consume(tlp.fc_class(), tlp.data_credits()) {
            Self::transmit(
                &mut self.queue,
                &mut self.tracer,
                &mut self.metrics,
                &mut self.spans,
                &mut self.rng,
                &mut self.prof,
                &mut self.tlps,
                link,
                end,
                params,
                d,
                src,
                tlp,
            );
        } else {
            let now = self.queue.now();
            if is_cpl {
                d.cplq.push_back((now, tlp));
            } else {
                d.reqq.push_back((now, tlp));
            }
            self.metrics
                .gauge_set(d.m.queue_depth, (d.reqq.len() + d.cplq.len()) as i64);
        }
    }

    /// Reserves the wire and schedules delivery for a credit-approved TLP.
    /// With a non-zero link error rate, corrupted transmissions occupy the
    /// wire, are NAKed, and replay after the penalty — in order, exactly
    /// like a PCIe/PEARL data-link-layer replay buffer.
    #[allow(clippy::too_many_arguments)] // split borrows of fabric fields
    fn transmit(
        queue: &mut EventQueue<Ev>,
        tracer: &mut Tracer,
        metrics: &mut MetricsHub,
        spans: &mut SpanStore,
        rng: &mut SimRng,
        prof: &mut FabricProf,
        tlps: &mut TlpSlab,
        link: u32,
        dir: Dir,
        params: LinkParams,
        d: &mut LinkDir,
        sender: DeviceId,
        tlp: Tlp,
    ) {
        let corrupt_p = params.error_rate_ppm as f64 / 1e6;
        let submitted = queue.now();
        loop {
            prof.tlp_transmits += 1;
            let wire_bytes = tlp.wire_bytes();
            let (departure, arrival) = d.wire.reserve(queue.now(), &params, wire_bytes);
            metrics.add(
                d.m.wire_busy_ns,
                params.serialize(wire_bytes).as_ps() / 1_000,
            );
            metrics.record_bytes(d.m.wire_bytes, departure, wire_bytes);
            if corrupt_p > 0.0 && rng.gen_bool(corrupt_p) {
                // LCRC failure at the receiver: discard, NAK, replay. The
                // wire time was spent; the replay waits for the NAK round
                // trip and retransmits (possibly corrupting again).
                d.wire.replays += 1;
                d.wire.busy_until = d.wire.busy_until.max(arrival) + params.replay_penalty();
                metrics.inc(d.m.replays);
                if let Some(sp) = tlp.span {
                    spans.segment(sp, "replay", departure, arrival, Some(sender.0));
                }
                tracer.emit(TraceLevel::Packet, queue.now(), || {
                    format!("tx link{link}/{dir} {tlp:?} CORRUPT -> replay")
                });
                continue;
            }
            metrics.inc(d.m.tlps);
            if let Some(sp) = tlp.span {
                // Head-of-line wait behind earlier packets serializing on
                // this wire, then the traversal itself (tx + propagation).
                if departure > submitted {
                    spans.segment(sp, "wire_wait", submitted, departure, Some(sender.0));
                }
                spans.segment(sp, "wire", departure, arrival, Some(sender.0));
            }
            tracer.emit(TraceLevel::Packet, queue.now(), || {
                format!("tx link{link}/{dir} {tlp:?} depart={departure} arrive={arrival}")
            });
            let tlp = tlps.insert(tlp);
            queue.schedule_at(arrival, Ev::Deliver { link, dir, tlp });
            break;
        }
    }

    /// After credits return, pushes out as many queued packets as now fit.
    fn pump_link(&mut self, link: u32, dir: Dir) {
        let params = self.links[link as usize].params;
        let sender = self.links[link as usize].ends[dir.index()].0;
        let d = &mut self.links[link as usize].dirs[dir.index()];
        loop {
            // Completions first: they must be able to bypass stalled
            // requests or read traffic deadlocks behind write bursts.
            let from_cpl = match (d.cplq.front(), d.reqq.front()) {
                (Some((_, c)), _) if d.credits.available(FcClass::Completion, c.data_credits()) => {
                    true
                }
                (_, Some((_, r))) if d.credits.available(r.fc_class(), r.data_credits()) => false,
                _ => break,
            };
            let (queued_at, tlp) = if from_cpl {
                d.cplq.pop_front().expect("checked front")
            } else {
                d.reqq.pop_front().expect("checked front")
            };
            let stall = self.queue.now().since(queued_at);
            d.credit_stall += stall;
            self.metrics.add(d.m.credit_stall_ns, stall.as_ps() / 1_000);
            self.metrics
                .gauge_set(d.m.queue_depth, (d.reqq.len() + d.cplq.len()) as i64);
            if let Some(sp) = tlp.span {
                if stall > Dur::ZERO {
                    self.spans
                        .segment(sp, "stall", queued_at, self.queue.now(), Some(sender.0));
                }
            }
            let ok = d.credits.consume(tlp.fc_class(), tlp.data_credits());
            debug_assert!(ok);
            Self::transmit(
                &mut self.queue,
                &mut self.tracer,
                &mut self.metrics,
                &mut self.spans,
                &mut self.rng,
                &mut self.prof,
                &mut self.tlps,
                link,
                dir,
                params,
                d,
                sender,
                tlp,
            );
        }
    }

    /// Schedules a bare timer for a device from outside any handler
    /// (harness convenience).
    pub fn schedule_timer(&mut self, dst: DeviceId, delay: Dur, tag: u64) {
        self.queue.schedule_in(delay, Ev::Timer { dst, tag });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PageMemory;
    use crate::tlp::Tag;
    use bytes::Bytes;

    /// Minimal memory endpoint used by fabric unit tests: consumes writes
    /// into a PageMemory, answers reads with completions, counts MSIs.
    struct TestMem {
        #[allow(dead_code)]
        id: DeviceId,
        mem: PageMemory,
        msi_count: u32,
        cpl_count: u32,
        delivered_writes: Vec<(SimTime, u64, usize)>,
    }

    impl TestMem {
        fn new(id: DeviceId) -> Self {
            TestMem {
                id,
                mem: PageMemory::new(),
                msi_count: 0,
                cpl_count: 0,
                delivered_writes: Vec::new(),
            }
        }
    }

    impl Device for TestMem {
        fn on_tlp(&mut self, port: PortIdx, tlp: Tlp, ctx: &mut Ctx<'_>) {
            match tlp.kind {
                TlpKind::MemWrite { addr, data } => {
                    self.delivered_writes.push((ctx.now(), addr, data.len()));
                    self.mem.write(addr, &data);
                }
                TlpKind::MemRead {
                    addr,
                    len,
                    tag,
                    requester,
                } => {
                    let data = self.mem.read(addr, len as usize);
                    ctx.send(port, Tlp::completion(tag, requester, 0, data, true));
                }
                TlpKind::Completion { .. } => self.cpl_count += 1,
                TlpKind::Msi { .. } => self.msi_count += 1,
            }
        }
        fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_>) {}
    }

    /// A requester that fires a burst of writes or one read at t=0.
    struct Requester {
        #[allow(dead_code)]
        id: DeviceId,
        got: Vec<(SimTime, Bytes)>,
    }
    impl Device for Requester {
        fn on_tlp(&mut self, _port: PortIdx, tlp: Tlp, ctx: &mut Ctx<'_>) {
            if let TlpKind::Completion { data, .. } = tlp.kind {
                self.got.push((ctx.now(), data));
            }
        }
        fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_>) {}
    }

    fn pair() -> (Fabric, DeviceId, DeviceId) {
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let mem = f.add_device(TestMem::new);
        f.connect(
            (req, PortIdx(0)),
            (mem, PortIdx(0)),
            LinkParams::gen2_x8().with_latency(Dur::from_ns(100)),
        );
        (f, req, mem)
    }

    #[test]
    fn write_arrives_with_serialization_and_latency() {
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(0), Tlp::write(0x1000, vec![0xab; 256]));
        });
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        assert_eq!(m.delivered_writes.len(), 1);
        let (t, addr, len) = m.delivered_writes[0];
        assert_eq!((addr, len), (0x1000, 256));
        // 280 wire bytes at 4 GB/s = 70 ns + 100 ns latency.
        assert_eq!(t, SimTime::from_ps(170_000));
        assert_eq!(m.mem.read(0x1000, 3), vec![0xab; 3]);
    }

    #[test]
    fn back_to_back_writes_pipeline_on_the_wire() {
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..10u64 {
                ctx.send(PortIdx(0), Tlp::write(0x1000 + i * 256, vec![i as u8; 256]));
            }
        });
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        assert_eq!(m.delivered_writes.len(), 10);
        // Arrivals are exactly 70 ns apart: the wire is the bottleneck,
        // the latency is paid once per packet but overlaps.
        for w in m.delivered_writes.windows(2) {
            assert_eq!(w[1].0.since(w[0].0), Dur::from_ns(70));
        }
    }

    #[test]
    fn read_round_trip_returns_data() {
        let (mut f, req, mem) = pair();
        f.device_mut::<TestMem>(mem).mem.write(0x2000, b"ping");
        f.drive::<Requester, _>(req, |d, ctx| {
            ctx.send(PortIdx(0), Tlp::read(0x2000, 4, crate::tlp::Tag(7), d.id));
        });
        f.run_until_idle();
        let r = f.device::<Requester>(req);
        assert_eq!(r.got.len(), 1);
        assert_eq!(&r.got[0].1[..], b"ping");
        // Round trip: request 24 B (6 ns) + 100 ns + completion 28 B (7 ns) + 100 ns.
        assert_eq!(r.got[0].0, SimTime::from_ps(213_000));
    }

    #[test]
    fn msi_is_posted_and_counted() {
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(0), Tlp::msi(3));
            ctx.send(PortIdx(0), Tlp::msi(3));
        });
        f.run_until_idle();
        assert_eq!(f.device::<TestMem>(mem).msi_count, 2);
    }

    #[test]
    fn flow_control_blocks_and_recovers() {
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let mem = f.add_device(TestMem::new);
        // Tiny credit pool: 2 posted headers / 32 data credits.
        let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
        p.posted_hdr_credits = 2;
        p.posted_data_credits = 32;
        f.connect((req, PortIdx(0)), (mem, PortIdx(0)), p);
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..20u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
            }
        });
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        assert_eq!(m.delivered_writes.len(), 20, "all packets eventually land");
        // With only 2 packets in flight and 100 ns credit-return turnaround,
        // spacing is credit-limited, not wire-limited (> 70 ns apart on avg).
        let first = m.delivered_writes.first().unwrap().0;
        let last = m.delivered_writes.last().unwrap().0;
        assert!(last.since(first) > Dur::from_ns(19 * 70));
    }

    #[test]
    fn ordering_is_fifo_per_direction() {
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..50u64 {
                ctx.send(PortIdx(0), Tlp::write(0x100 * i, vec![i as u8; 64]));
            }
        });
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        let addrs: Vec<u64> = m.delivered_writes.iter().map(|w| w.1).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted, "writes delivered in issue order");
    }

    #[test]
    fn link_stats_accumulate() {
        let (mut f, req, _mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(0), Tlp::write(0, vec![0u8; 100]));
        });
        f.run_until_idle();
        let s = f.link_stats(LinkId(0), Dir::Fwd);
        assert_eq!(s.packets, 1);
        assert_eq!(s.wire_bytes, 124);
        assert_eq!(s.queued, 0);
        let rev = f.link_stats(LinkId(0), Dir::Rev);
        assert_eq!(rev.packets, 0);
    }

    #[test]
    fn send_on_unconnected_port_is_recorded_not_fatal() {
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(5), Tlp::msi(0));
        });
        f.run_until_idle();
        assert_eq!(
            f.config_errors(),
            &[ConfigError::UnconnectedPort {
                device: req,
                port: PortIdx(5)
            }]
        );
        assert_eq!(
            f.config_errors()[0].to_string(),
            "send on unconnected port dev0:p5"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MPS")]
    fn oversized_payload_panics() {
        let (mut f, req, _) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(0), Tlp::write(0, vec![0u8; 512]));
        });
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_rejected() {
        let mut f = Fabric::new();
        let a = f.add_device(|id| Requester { id, got: vec![] });
        let b = f.add_device(TestMem::new);
        let c = f.add_device(TestMem::new);
        f.connect((a, PortIdx(0)), (b, PortIdx(0)), LinkParams::gen2_x8());
        f.connect((a, PortIdx(0)), (c, PortIdx(0)), LinkParams::gen2_x8());
    }

    #[test]
    fn completions_bypass_blocked_requests() {
        // Saturate posted credits with writes, then issue a completion on
        // the same direction: it must not wait behind the blocked queue
        // (PCIe ordering rule / deadlock avoidance).
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let mem = f.add_device(TestMem::new);
        let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
        p.posted_hdr_credits = 1;
        p.posted_data_credits = 16;
        p.credit_return_delay = Dur::from_us(50); // writes stall a long time
        f.connect((req, PortIdx(0)), (mem, PortIdx(0)), p);
        let reqid = req;
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..4u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
            }
            // This completion is queued after the writes...
            ctx.send(
                PortIdx(0),
                Tlp::completion(Tag(9), reqid, 0, vec![2u8; 64], true),
            );
        });
        // Run a short window: far less than the 50 µs credit stall.
        f.run_until(SimTime::from_ps(5_000_000)); // 5 µs
        let s = f.link_stats(LinkId(0), Dir::Fwd);
        // 1 write went out (first credit), the completion bypassed the
        // other 3 blocked writes.
        assert_eq!(s.packets, 2, "write + bypassing completion");
        assert_eq!(s.queued, 3, "three writes still blocked");
        // Drain fully: everything eventually arrives.
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        assert_eq!(m.delivered_writes.len(), 4);
        assert_eq!(m.cpl_count, 1);
    }

    #[test]
    fn run_until_respects_the_deadline() {
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..10u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![0u8; 256]));
            }
        });
        // Arrivals at 170 ns, 240 ns, ... (70 ns apart). Stop at 300 ns.
        f.run_until(SimTime::from_ps(300_000));
        let got = f.device::<TestMem>(mem).delivered_writes.len();
        assert_eq!(got, 2, "exactly the arrivals before the deadline");
        assert!(f.now() <= SimTime::from_ps(300_000));
        f.run_until_idle();
        assert_eq!(f.device::<TestMem>(mem).delivered_writes.len(), 10);
    }

    #[test]
    fn packet_trace_captures_hops() {
        let (mut f, req, _mem) = pair();
        f.set_trace(TraceLevel::Packet, 64);
        f.drive::<Requester, _>(req, |_, ctx| {
            ctx.send(PortIdx(0), Tlp::write(0xabc0, vec![1u8; 64]));
        });
        f.run_until_idle();
        let dump = f.dump_trace();
        assert!(dump.contains("tx link0/fwd"), "{dump}");
        assert!(dump.contains("deliver"), "{dump}");
        assert!(dump.contains("0xabc0"), "{dump}");
    }

    #[test]
    fn lossy_link_delivers_everything_exactly_once() {
        // PEARL reliability: at 5% TLP corruption every byte still arrives,
        // in order, with replays counted.
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let mem = f.add_device(TestMem::new);
        f.connect(
            (req, PortIdx(0)),
            (mem, PortIdx(0)),
            LinkParams::gen2_x8()
                .with_latency(Dur::from_ns(100))
                .with_error_rate_ppm(50_000),
        );
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..200u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![i as u8; 256]));
            }
        });
        f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        assert_eq!(m.delivered_writes.len(), 200, "exactly once");
        let addrs: Vec<u64> = m.delivered_writes.iter().map(|w| w.1).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted, "order preserved through replays");
        let s = f.link_stats(LinkId(0), Dir::Fwd);
        assert!(s.replays > 0, "some replays must have occurred");
        for i in 0..200u64 {
            assert_eq!(m.mem.read(i * 256, 1), vec![i as u8], "payload {i}");
        }
    }

    #[test]
    fn lossy_link_reduces_bandwidth() {
        let run = |ppm: u32| {
            let mut f = Fabric::new();
            let req = f.add_device(|id| Requester { id, got: vec![] });
            let mem = f.add_device(TestMem::new);
            f.connect(
                (req, PortIdx(0)),
                (mem, PortIdx(0)),
                LinkParams::gen2_x8()
                    .with_latency(Dur::from_ns(100))
                    .with_error_rate_ppm(ppm),
            );
            f.drive::<Requester, _>(req, |_, ctx| {
                for i in 0..1000u64 {
                    ctx.send(PortIdx(0), Tlp::write(i * 256, vec![0u8; 256]));
                }
            });
            f.run_until_idle().as_ps()
        };
        let clean = run(0);
        let lossy = run(100_000); // 10%
        assert!(lossy > clean + clean / 20, "clean={clean} lossy={lossy}");
    }

    #[test]
    fn error_injection_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut f = Fabric::new();
            f.set_seed(seed);
            let req = f.add_device(|id| Requester { id, got: vec![] });
            let mem = f.add_device(TestMem::new);
            f.connect(
                (req, PortIdx(0)),
                (mem, PortIdx(0)),
                LinkParams::gen2_x8().with_error_rate_ppm(30_000),
            );
            f.drive::<Requester, _>(req, |_, ctx| {
                for i in 0..500u64 {
                    ctx.send(PortIdx(0), Tlp::write(i * 64, vec![1u8; 64]));
                }
            });
            f.run_until_idle();
            (f.now().as_ps(), f.link_stats(LinkId(0), Dir::Fwd).replays)
        };
        assert_eq!(run(42), run(42), "same seed, same replay schedule");
        assert_ne!(run(42).1, run(43).1, "different seeds diverge");
    }

    #[test]
    fn bandwidth_saturates_toward_theoretical_peak() {
        // 4096 × 256-byte writes: delivered-bytes / elapsed must approach
        // the §IV-A1 theoretical peak (3.657 GB/s), since the wire is the
        // only bottleneck in this two-device setup.
        let (mut f, req, mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..4096u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![0u8; 256]));
            }
        });
        let end = f.run_until_idle();
        let m = f.device::<TestMem>(mem);
        let bytes: usize = m.delivered_writes.iter().map(|w| w.2).sum();
        let bw = bytes as f64 / end.since(SimTime::ZERO).as_s_f64();
        let peak = LinkParams::gen2_x8().theoretical_peak_bytes_per_sec();
        assert!(bw / peak > 0.99, "bw={bw:.3e} peak={peak:.3e}");
    }

    #[test]
    fn port_link_maps_ports_to_directions() {
        let (f, req, mem) = pair();
        assert_eq!(f.port_link(req, PortIdx(0)), Some((LinkId(0), Dir::Fwd)));
        assert_eq!(f.port_link(mem, PortIdx(0)), Some((LinkId(0), Dir::Rev)));
        assert_eq!(f.port_link(req, PortIdx(7)), None);
    }

    #[test]
    fn metrics_track_wire_time_and_tlps() {
        let (mut f, req, _mem) = pair();
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..10u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![0u8; 256]));
            }
        });
        f.run_until_idle();
        let snap = f.metrics_snapshot();
        assert_eq!(snap.counter("link.0.fwd.tlps"), Some(10));
        // 280 wire bytes at 4 GB/s = 70 ns per packet.
        assert_eq!(snap.counter("link.0.fwd.wire_busy_ns"), Some(700));
        assert_eq!(snap.counter("link.0.fwd.credit_stall_ns"), Some(0));
        assert_eq!(snap.counter("link.0.rev.tlps"), Some(0));
        match snap.get("link.0.fwd.wire_bytes") {
            Some(tca_sim::MetricValue::Bandwidth { bytes, .. }) => assert_eq!(*bytes, 2800),
            other => panic!("unexpected {other:?}"),
        }
        let stats = f.link_stats(LinkId(0), Dir::Fwd);
        assert_eq!(stats.wire_busy, Dur::from_ns(700));
        assert_eq!(stats.credit_stall, Dur::ZERO);
    }

    #[test]
    fn metrics_attribute_credit_stall_and_queue_depth() {
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let mem = f.add_device(TestMem::new);
        let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
        p.posted_hdr_credits = 2;
        p.posted_data_credits = 32;
        f.connect((req, PortIdx(0)), (mem, PortIdx(0)), p);
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..20u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
            }
        });
        f.run_until_idle();
        let snap = f.metrics_snapshot();
        let stall = snap.counter("link.0.fwd.credit_stall_ns").unwrap();
        assert!(stall > 0, "credit-starved run must accumulate stall time");
        let stats = f.link_stats(LinkId(0), Dir::Fwd);
        assert_eq!(stats.credit_stall.as_ps() / 1_000, stall);
        match snap.get("link.0.fwd.queue_depth") {
            Some(tca_sim::MetricValue::Gauge { current, peak }) => {
                assert_eq!(*current, 0, "queue drained");
                assert_eq!(*peak, 18, "18 writes were blocked behind 2 credits");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A receiver that takes the credit hold of every delivery and never
    /// releases it — models a sink whose internal buffer never drains, the
    /// deliberate credit-starvation case for watchdog tests.
    struct Hoarder {
        #[allow(dead_code)]
        id: DeviceId,
        holds: Vec<CreditHold>,
    }
    impl Device for Hoarder {
        fn on_tlp(&mut self, _port: PortIdx, _tlp: Tlp, ctx: &mut Ctx<'_>) {
            self.holds.push(ctx.hold_credits());
        }
        fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_>) {}
        fn name(&self) -> &str {
            "hoarder"
        }
        fn health_status(&self) -> Option<String> {
            Some(format!("{} credit hold(s) outstanding", self.holds.len()))
        }
    }

    #[test]
    fn watchdog_diagnoses_credit_starved_link() {
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let sink = f.add_device(|id| Hoarder { id, holds: vec![] });
        let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
        p.posted_hdr_credits = 1;
        f.connect((req, PortIdx(0)), (sink, PortIdx(0)), p);
        f.arm_watchdog(Dur::from_us(100));
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..3u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
            }
        });
        // The first write consumes the only posted header credit and is
        // delivered; the hoarder keeps the hold, so the credit never
        // returns and the queue drains with two writes still blocked.
        f.run_until_idle();
        let report = f.stall_report().expect("watchdog must fire");
        let rendered = report.render();
        assert!(rendered.contains("WATCHDOG"), "{rendered}");
        assert!(
            report.diagnosis.contains("link 0.fwd"),
            "diagnosis names the starved link: {}",
            report.diagnosis
        );
        assert!(
            report.diagnosis.contains("2 TLP(s) blocked on credits"),
            "{}",
            report.diagnosis
        );
        assert!(
            report
                .diagnosis
                .contains("hoarder: 1 credit hold(s) outstanding"),
            "diagnosis names the stalled engine: {}",
            report.diagnosis
        );
    }

    #[test]
    fn watchdog_drained_stall_names_oldest_in_flight_span() {
        // The drained-stall path with span tracing on: the queue empties
        // with TLPs still blocked AND a transfer tree still open, so the
        // diagnosis must name that oldest in-flight span — the line an
        // operator greps for to learn *which* transfer never completed.
        let mut f = Fabric::new();
        let req = f.add_device(|id| Requester { id, got: vec![] });
        let sink = f.add_device(|id| Hoarder { id, holds: vec![] });
        let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
        p.posted_hdr_credits = 1;
        f.connect((req, PortIdx(0)), (sink, PortIdx(0)), p);
        f.set_span_tracing(true);
        f.arm_watchdog(Dur::from_us(100));
        f.spans_mut()
            .start_root("stuck_put", SimTime::ZERO, Some(0))
            .expect("tracing enabled");
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..3u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
            }
        });
        // Drains long before the 100 µs window: only `check_drained_stall`
        // (not the periodic in-run check) can have fired the watchdog.
        let end = f.run_until_idle();
        assert!(end < SimTime::from_ps(100_000_000), "drained early: {end}");
        let report = f.stall_report().expect("drained stall must fire");
        assert_eq!(report.at, end, "fired at the drain instant");
        assert!(
            report
                .diagnosis
                .contains("oldest in-flight span: `stuck_put`"),
            "diagnosis names the open transfer: {}",
            report.diagnosis
        );
        assert!(
            report.diagnosis.contains("blocked on credits"),
            "{}",
            report.diagnosis
        );
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_run() {
        let (mut f, req, _mem) = pair();
        f.arm_watchdog(Dur::from_us(100));
        f.drive::<Requester, _>(req, |_, ctx| {
            for i in 0..10u64 {
                ctx.send(PortIdx(0), Tlp::write(i * 256, vec![0u8; 256]));
            }
        });
        f.run_until_idle();
        assert!(f.stall_report().is_none());
    }

    #[test]
    fn watchdog_fires_on_progress_free_event_churn() {
        // Livelock shape: timers keep firing but no write/MSI ever lands.
        struct Spinner {
            #[allow(dead_code)]
            id: DeviceId,
        }
        impl Device for Spinner {
            fn on_tlp(&mut self, _p: PortIdx, _t: Tlp, _c: &mut Ctx<'_>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
                ctx.timer_in(Dur::from_ns(50), tag);
            }
            fn name(&self) -> &str {
                "spinner"
            }
        }
        let mut f = Fabric::new();
        let s = f.add_device(|id| Spinner { id });
        f.arm_watchdog(Dur::from_us(2));
        f.schedule_timer(s, Dur::from_ns(50), 0);
        f.run_until(SimTime::from_ps(10_000_000)); // 10 µs of churn
        let report = f.stall_report().expect("no progress for 10 µs");
        assert!(report.at <= SimTime::from_ps(10_000_000));
        assert_eq!(report.last_progress, SimTime::ZERO);
        assert!(
            report.diagnosis.contains("all devices silent"),
            "{}",
            report.diagnosis
        );
    }

    #[test]
    fn sampling_records_series_without_shifting_time() {
        let run = |sample: bool| {
            let mut f = Fabric::new();
            let req = f.add_device(|id| Requester { id, got: vec![] });
            let mem = f.add_device(TestMem::new);
            let mut p = LinkParams::gen2_x8().with_latency(Dur::from_ns(10));
            p.posted_hdr_credits = 2;
            p.posted_data_credits = 32;
            f.connect((req, PortIdx(0)), (mem, PortIdx(0)), p);
            if sample {
                f.enable_sampling(Dur::from_ns(50));
                f.arm_watchdog(Dur::from_ms(1));
            }
            f.drive::<Requester, _>(req, |_, ctx| {
                for i in 0..20u64 {
                    ctx.send(PortIdx(0), Tlp::write(i * 256, vec![1u8; 256]));
                }
            });
            let end = f.run_until_idle();
            (end, f.events_executed(), f)
        };
        let (t_plain, ev_plain, _) = run(false);
        let (t_sampled, ev_sampled, f) = run(true);
        assert_eq!(t_plain, t_sampled, "sampling must not move time");
        assert_eq!(ev_plain, ev_sampled, "sampling must not add events");
        assert!(f.stall_report().is_none());
        let sampler = f.sampler().expect("enabled");
        assert!(sampler.captures() > 5, "got {}", sampler.captures());
        let depth = sampler
            .series_by_name("link.0.fwd.queue_depth")
            .expect("series recorded");
        assert!(
            depth.samples.iter().any(|&(_, v)| v > 0),
            "credit-limited run must show nonzero queue occupancy"
        );
        let credits = sampler
            .series_by_name("link.0.fwd.credits_in_use")
            .expect("series recorded");
        assert!(credits.samples.iter().any(|&(_, v)| v > 0));
        // Counter events land in the Chrome trace.
        assert!(f.chrome_trace_json().contains("\"ph\":\"C\""));
        // Identical runs produce byte-identical series JSON.
        let (_, _, f2) = run(true);
        assert_eq!(
            f.sampler().unwrap().to_json(),
            f2.sampler().unwrap().to_json()
        );
    }
}
