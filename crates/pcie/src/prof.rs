//! Host-side TLP accounting for `tca-prof`: process-wide counters of TLP
//! constructions, clones, and router relay hops.
//!
//! Like the queue counters in [`tca_sim::prof`], these are pure host-side
//! integers — they never schedule events or consult wall-clock time, so
//! the determinism lint and the byte-identity tests stay intact. The
//! counters are compiled to no-ops unless the `host-prof` feature is on,
//! keeping the hot constructors free even of atomic traffic in ordinary
//! builds.
//!
//! They are process-wide (a `Tlp` has no back-pointer to a fabric), so
//! consumers measure *deltas* around a workload rather than absolutes;
//! `tca-bench`'s profiler does exactly that.

/// Snapshot of the process-wide TLP accounting counters. All zeros unless
/// the `host-prof` feature is enabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlpCounts {
    /// TLPs built through the [`crate::Tlp`] constructors
    /// (`write`/`read`/`completion`/`msi`).
    pub constructed: u64,
    /// TLP clones (each one duplicates the payload handle and span).
    pub cloned: u64,
    /// PEACH2 router relay hops (a TLP re-built at an intermediate chip).
    pub relay_hops: u64,
}

impl TlpCounts {
    /// Counter increments since `earlier`.
    pub fn since(&self, earlier: &TlpCounts) -> TlpCounts {
        TlpCounts {
            constructed: self.constructed - earlier.constructed,
            cloned: self.cloned - earlier.cloned,
            relay_hops: self.relay_hops - earlier.relay_hops,
        }
    }
}

#[cfg(feature = "host-prof")]
mod counters {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub(super) static CONSTRUCTED: AtomicU64 = AtomicU64::new(0);
    pub(super) static CLONED: AtomicU64 = AtomicU64::new(0);
    pub(super) static RELAY_HOPS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Relaxed);
    }
}

/// Records one TLP construction (called by the [`crate::Tlp`] builders).
#[inline]
pub fn count_tlp_new() {
    #[cfg(feature = "host-prof")]
    counters::bump(&counters::CONSTRUCTED);
}

/// Records one TLP clone.
#[inline]
pub fn count_tlp_clone() {
    #[cfg(feature = "host-prof")]
    counters::bump(&counters::CLONED);
}

/// Records one router relay hop (called from the PEACH2 relay path).
#[inline]
pub fn count_relay_hop() {
    #[cfg(feature = "host-prof")]
    counters::bump(&counters::RELAY_HOPS);
}

/// Current process-wide TLP counters (zeros without `host-prof`).
pub fn tlp_counts() -> TlpCounts {
    #[cfg(feature = "host-prof")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        TlpCounts {
            constructed: counters::CONSTRUCTED.load(Relaxed),
            cloned: counters::CLONED.load(Relaxed),
            relay_hops: counters::RELAY_HOPS.load(Relaxed),
        }
    }
    #[cfg(not(feature = "host-prof"))]
    {
        TlpCounts::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlp_counts_delta() {
        let a = TlpCounts {
            constructed: 5,
            cloned: 2,
            relay_hops: 1,
        };
        let b = TlpCounts {
            constructed: 9,
            cloned: 4,
            relay_hops: 3,
        };
        assert_eq!(
            b.since(&a),
            TlpCounts {
                constructed: 4,
                cloned: 2,
                relay_hops: 2,
            }
        );
    }

    #[cfg(feature = "host-prof")]
    #[test]
    fn construction_and_clone_counting_is_live() {
        let before = tlp_counts();
        let t = crate::Tlp::write(0x1000, vec![0u8; 64]);
        let _c = t.clone();
        let d = tlp_counts().since(&before);
        assert!(d.constructed >= 1);
        assert!(d.cloned >= 1);
    }
}
