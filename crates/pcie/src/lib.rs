//! # tca-pcie — the PCI Express substrate
//!
//! A packet-level model of PCI Express sufficient to reproduce the
//! performance phenomena the TCA/PEACH2 paper measures:
//!
//! * **TLPs with real payloads** ([`Tlp`]): posted memory writes,
//!   non-posted reads, completions, MSIs — with the exact per-packet wire
//!   overhead used by the paper's theoretical-peak formula
//!   (`4 GB/s × 256/280 = 3.66 GB/s` for Gen2 x8, MPS 256).
//! * **Links** ([`LinkParams`]): generation/lane arithmetic, store-and-
//!   forward serialization, one-way latency, per-direction wires.
//! * **Credit-based flow control** ([`flow::CreditState`]): three FC
//!   classes; completions can bypass stalled requests; receiving devices
//!   may *hold* credits to model finite internal buffers (backpressure).
//! * **The fabric** ([`Fabric`]): owns devices and links, runs the
//!   deterministic event loop, delivers packets, returns credits.
//! * **Sparse memory** ([`PageMemory`]): real bytes end-to-end so every
//!   transfer is verifiable.
//!
//! Device behaviour (host bridges, GPUs, the PEACH2 chip) lives in the
//! higher crates; this crate knows nothing about TCA itself.
//!
//! ```
//! use tca_pcie::{LinkParams, Tlp};
//!
//! // The paper's §IV-A1 arithmetic, as code:
//! let link = LinkParams::gen2_x8();
//! assert_eq!(link.raw_bytes_per_sec(), 4_000_000_000);
//! let peak = link.theoretical_peak_bytes_per_sec();
//! assert!((peak / 1e9 - 3.657).abs() < 0.01);
//!
//! // A 256-byte write occupies 280 bytes of wire.
//! assert_eq!(Tlp::write(0x1000, vec![0u8; 256]).wire_bytes(), 280);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod device;
pub mod fabric;
pub mod flow;
pub mod link;
pub mod memory;
pub mod prof;
pub mod slab;
pub mod tagpool;
pub mod tlp;

pub use addr::{align_down, align_up, is_aligned, AddrRange};
pub use device::{CreditHold, Ctx, Device};
pub use fabric::{ConfigError, Fabric, FabricProf, LinkDirStats, LinkId, StepKind};
pub use link::{LinkParams, PcieGen, WireState};
pub use memory::{PageMemory, PAGE_SIZE};
pub use prof::{tlp_counts, TlpCounts};
pub use slab::{TlpHandle, TlpSlab};
pub use tagpool::{ReadReassembly, TagPool};
pub use tlp::{DeviceId, Dir, FcClass, PortIdx, Tag, Tlp, TlpKind, TLP_OVERHEAD_BYTES};
