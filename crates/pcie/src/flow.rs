//! PCIe credit-based flow control.
//!
//! Each link direction carries the *sender-side* view of the receiver's
//! buffer credits, split into the three PCIe flow-control classes. Header
//! credits are counted in TLPs, data credits in 16-byte units, exactly like
//! the real protocol. Non-posted requests carry no data in this model, so
//! only their header credit is tracked.

use crate::link::LinkParams;
use crate::tlp::FcClass;

/// Sender-side credit counters for one link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditState {
    /// Posted header credits (MemWrite, Msi).
    pub posted_hdr: u32,
    /// Posted data credits, 16-byte units.
    pub posted_data: u32,
    /// Non-posted header credits (MemRead).
    pub nonposted_hdr: u32,
    /// Completion header credits.
    pub completion_hdr: u32,
    /// Completion data credits, 16-byte units.
    pub completion_data: u32,
}

impl CreditState {
    /// Initial credits advertised by a receiver with the given parameters.
    pub fn from_params(p: &LinkParams) -> Self {
        CreditState {
            posted_hdr: p.posted_hdr_credits,
            posted_data: p.posted_data_credits,
            nonposted_hdr: p.nonposted_hdr_credits,
            completion_hdr: p.completion_hdr_credits,
            completion_data: p.completion_data_credits,
        }
    }

    /// Whether a packet of `class` needing `data` data-credits can be sent.
    pub fn available(&self, class: FcClass, data: u32) -> bool {
        match class {
            FcClass::Posted => self.posted_hdr >= 1 && self.posted_data >= data,
            FcClass::NonPosted => self.nonposted_hdr >= 1,
            FcClass::Completion => self.completion_hdr >= 1 && self.completion_data >= data,
        }
    }

    /// Consumes credits for one packet. Returns `false` (consuming nothing)
    /// when insufficient.
    pub fn consume(&mut self, class: FcClass, data: u32) -> bool {
        if !self.available(class, data) {
            return false;
        }
        match class {
            FcClass::Posted => {
                self.posted_hdr -= 1;
                self.posted_data -= data;
            }
            FcClass::NonPosted => self.nonposted_hdr -= 1,
            FcClass::Completion => {
                self.completion_hdr -= 1;
                self.completion_data -= data;
            }
        }
        true
    }

    /// Returns credits for one packet (an UpdateFC from the receiver).
    pub fn replenish(&mut self, class: FcClass, hdr: u32, data: u32) {
        match class {
            FcClass::Posted => {
                self.posted_hdr += hdr;
                self.posted_data += data;
            }
            FcClass::NonPosted => self.nonposted_hdr += hdr,
            FcClass::Completion => {
                self.completion_hdr += hdr;
                self.completion_data += data;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CreditState {
        CreditState {
            posted_hdr: 2,
            posted_data: 32, // 512 bytes
            nonposted_hdr: 1,
            completion_hdr: 2,
            completion_data: 16,
        }
    }

    #[test]
    fn from_params_copies_advertisement() {
        let p = LinkParams::gen2_x8();
        let c = CreditState::from_params(&p);
        assert_eq!(c.posted_hdr, p.posted_hdr_credits);
        assert_eq!(c.completion_data, p.completion_data_credits);
    }

    #[test]
    fn posted_consume_and_exhaust() {
        let mut c = small();
        assert!(c.consume(FcClass::Posted, 16)); // 256 B
        assert!(c.consume(FcClass::Posted, 16));
        assert!(!c.consume(FcClass::Posted, 1), "headers exhausted");
        assert_eq!(c.posted_hdr, 0);
        assert_eq!(c.posted_data, 0);
    }

    #[test]
    fn posted_data_limits_even_with_headers() {
        let mut c = small();
        assert!(!c.consume(FcClass::Posted, 33), "data credits insufficient");
        assert_eq!(c.posted_hdr, 2, "nothing consumed on failure");
    }

    #[test]
    fn nonposted_ignores_data() {
        let mut c = small();
        assert!(c.consume(FcClass::NonPosted, 0));
        assert!(!c.consume(FcClass::NonPosted, 0));
        c.replenish(FcClass::NonPosted, 1, 0);
        assert!(c.consume(FcClass::NonPosted, 0));
    }

    #[test]
    fn completion_class_independent_of_posted() {
        let mut c = small();
        while c.consume(FcClass::Posted, 1) {}
        assert!(c.available(FcClass::Completion, 16));
        assert!(c.consume(FcClass::Completion, 16));
    }

    #[test]
    fn replenish_restores() {
        let mut c = small();
        assert!(c.consume(FcClass::Posted, 32));
        c.replenish(FcClass::Posted, 1, 32);
        assert_eq!(c, {
            let mut x = small();
            x.consume(FcClass::Posted, 32);
            x.replenish(FcClass::Posted, 1, 32);
            x
        });
        assert!(c.consume(FcClass::Posted, 32));
    }
}
