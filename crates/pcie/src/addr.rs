//! PCIe address-space helpers.
//!
//! The whole TCA sub-cluster shares one 64-bit PCIe address space (§III-E of
//! the paper). Everything here is plain arithmetic over `u64` addresses with
//! a thin [`AddrRange`] abstraction used by BARs, routing windows, and the
//! sub-cluster address map.

use std::fmt;

/// A half-open address range `[base, base + len)` in the PCIe space.
///
/// Boundary semantics, made explicit because routing lints depend on them:
///
/// * The end is **exclusive**: `contains(end())` is always false.
/// * Construction rejects wrapping ranges, so `base + len` never overflows
///   and [`AddrRange::end`] is total. The largest legal range is
///   `AddrRange::new(0, u64::MAX)`, whose exclusive end `u64::MAX` means the
///   top byte of the address space is not addressable by any range — a
///   deliberate trade for overflow-free arithmetic everywhere else.
/// * Empty ranges contain nothing and overlap nothing, including the
///   full-space range above.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    base: u64,
    len: u64,
}

impl AddrRange {
    /// Builds a range; `len` may be zero (an empty range contains nothing).
    ///
    /// # Panics
    /// Panics if the range wraps past the end of the address space.
    #[track_caller]
    pub const fn new(base: u64, len: u64) -> Self {
        assert!(base.checked_add(len).is_some(), "AddrRange wraps");
        AddrRange { base, len }
    }

    /// Range covering `[base, end)`.
    #[track_caller]
    pub const fn span(base: u64, end: u64) -> Self {
        assert!(end >= base, "AddrRange end before base");
        AddrRange {
            base,
            len: end - base,
        }
    }

    /// Base (inclusive).
    #[inline]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// True when the range is empty.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// End (exclusive). Saturating by construction: [`AddrRange::new`]
    /// rejects wrapping ranges, so this never overflows; the saturating add
    /// keeps the expression total even under `const` evaluation of
    /// adversarial inputs.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.base.saturating_add(self.len)
    }

    /// Whether `addr` falls inside the range.
    #[inline]
    pub const fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether the whole access `[addr, addr+len)` falls inside the range.
    #[inline]
    pub fn contains_access(&self, addr: u64, len: u64) -> bool {
        match addr.checked_add(len) {
            Some(end) => addr >= self.base && end <= self.end(),
            None => false,
        }
    }

    /// Offset of `addr` from the base.
    ///
    /// # Panics
    /// Panics if `addr` is outside the range.
    #[inline]
    #[track_caller]
    pub fn offset_of(&self, addr: u64) -> u64 {
        assert!(self.contains(addr), "addr {addr:#x} outside range {self:?}");
        addr - self.base
    }

    /// Whether two ranges overlap.
    pub const fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.end() && other.base < self.end() && self.len > 0 && other.len > 0
    }

    /// Splits the range into `n` equal aligned slices (used for the per-node
    /// partitioning of the 512 GiB TCA window, Fig. 4).
    ///
    /// # Panics
    /// Panics if `len` is not divisible by `n`.
    #[track_caller]
    pub fn split_equal(&self, n: u64) -> impl Iterator<Item = AddrRange> + '_ {
        assert!(
            n > 0 && self.len.is_multiple_of(n),
            "cannot split {self:?} into {n}"
        );
        let slice = self.len / n;
        (0..n).map(move |i| AddrRange::new(self.base + i * slice, slice))
    }
}

impl fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.base, self.end())
    }
}

/// Rounds `x` up to the next multiple of `align` (a power of two).
#[inline]
#[track_caller]
pub fn align_up(x: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    x.checked_add(align - 1).expect("align_up overflow") & !(align - 1)
}

/// Rounds `x` down to a multiple of `align` (a power of two).
#[inline]
#[track_caller]
pub fn align_down(x: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    x & !(align - 1)
}

/// Whether `x` is a multiple of `align` (a power of two).
#[inline]
pub fn is_aligned(x: u64, align: u64) -> bool {
    align.is_power_of_two() && x & (align - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_offsets() {
        let r = AddrRange::new(0x1000, 0x100);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xfff));
        assert_eq!(r.offset_of(0x1080), 0x80);
        assert_eq!(r.end(), 0x1100);
    }

    #[test]
    fn contains_access_edges() {
        let r = AddrRange::new(0x1000, 0x100);
        assert!(r.contains_access(0x1000, 0x100));
        assert!(!r.contains_access(0x1000, 0x101));
        assert!(!r.contains_access(0x10ff, 2));
        assert!(r.contains_access(0x10ff, 1));
        assert!(!r.contains_access(u64::MAX, 2), "wrap must not pass");
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AddrRange::new(0x1000, 0);
        assert!(r.is_empty());
        assert!(!r.contains(0x1000));
        assert!(!r.overlaps(&AddrRange::new(0, u64::MAX)));
        // ...and the full-space range agrees: overlap with an empty range
        // is false from both sides.
        assert!(!AddrRange::new(0, u64::MAX).overlaps(&r));
    }

    #[test]
    fn full_space_range_boundary_semantics() {
        // The largest constructible range: [0, u64::MAX). Its exclusive end
        // computes without wrapping, and it overlaps every non-empty range.
        let full = AddrRange::new(0, u64::MAX);
        assert_eq!(full.end(), u64::MAX);
        assert!(full.contains(0));
        assert!(full.contains(u64::MAX - 1));
        assert!(!full.contains(u64::MAX), "exclusive end");
        assert!(full.overlaps(&AddrRange::new(0x1000, 1)));
        assert!(full.overlaps(&AddrRange::new(u64::MAX - 1, 1)));
        assert!(AddrRange::new(0x1000, 1).overlaps(&full));
        // A range ending exactly at the top of the space behaves the same.
        let top = AddrRange::new(u64::MAX - 4, 4);
        assert_eq!(top.end(), u64::MAX);
        assert!(top.contains(u64::MAX - 1));
        assert!(!top.contains(u64::MAX));
        assert!(top.overlaps(&full));
    }

    #[test]
    fn overlap_cases() {
        let a = AddrRange::new(0x100, 0x100);
        assert!(a.overlaps(&AddrRange::new(0x180, 0x100)));
        assert!(a.overlaps(&AddrRange::new(0x0, 0x101)));
        assert!(!a.overlaps(&AddrRange::new(0x200, 0x100)), "adjacent");
        assert!(!a.overlaps(&AddrRange::new(0x0, 0x100)), "adjacent below");
    }

    #[test]
    fn split_equal_partitions() {
        let r = AddrRange::new(0x8_0000_0000, 512 << 30);
        let parts: Vec<_> = r.split_equal(16).collect();
        assert_eq!(parts.len(), 16);
        assert_eq!(parts[0].base(), r.base());
        assert_eq!(parts[15].end(), r.end());
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].base(), "contiguous");
            assert!(!w[0].overlaps(&w[1]));
        }
        assert_eq!(parts[3].len(), 32 << 30);
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn wrapping_range_rejected() {
        let _ = AddrRange::new(u64::MAX - 1, 4);
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_down(8191, 4096), 4096);
        assert!(is_aligned(1 << 30, 4096));
        assert!(!is_aligned(12, 8));
        assert!(!is_aligned(12, 12), "non-power-of-two alignment");
    }
}
