//! Baseline-interconnect parameters: InfiniBand HCA/switch timing and the
//! software costs of the MPI-like runtime and the CUDA copy path.

use tca_pcie::LinkParams;
use tca_sim::Dur;

/// InfiniBand generation of the HCA (Table I uses dual-rail QDR on the
/// base cluster; §IV-B1 quotes FDR < 1 µs as the comparison point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IbSpeed {
    /// QDR 4x: 32 Gb/s signalling, 8b/10b → 3.2 GB/s payload per rail
    /// (commonly quoted as 4 GB/s raw).
    Qdr,
    /// FDR 4x: 54.5 Gb/s signalling, 64b/66b → ≈ 6.6 GB/s per rail.
    Fdr,
}

impl IbSpeed {
    /// Payload byte rate of one rail.
    pub fn rail_rate(self) -> u64 {
        match self {
            IbSpeed::Qdr => 3_200_000_000,
            IbSpeed::Fdr => 6_600_000_000,
        }
    }
}

/// Parameters of one HCA + the fabric it connects to.
#[derive(Clone, Copy, Debug)]
pub struct IbParams {
    /// Link speed per rail.
    pub speed: IbSpeed,
    /// Number of rails (Connect-X3 dual-port QDR → 2, Table I).
    pub rails: u8,
    /// IB MTU: frame payload granularity on the wire.
    pub mtu: u32,
    /// Doorbell decoded → first source read issued (WQE fetch + setup).
    pub hca_setup: Dur,
    /// Cable + SerDes latency per wire traversal.
    pub wire_latency: Dur,
    /// Switch traversal latency.
    pub switch_latency: Dur,
    /// Frame received → first TLP pushed toward host memory.
    pub rx_forward: Dur,
    /// PCIe slot of the HCA (Gen3 x8 on the base cluster, §II-A).
    pub pcie_link: LinkParams,
    /// Outstanding read tags of the HCA's gather engine.
    pub tags: u16,
}

impl Default for IbParams {
    fn default() -> Self {
        IbParams {
            speed: IbSpeed::Qdr,
            rails: 2,
            mtu: 2048,
            hca_setup: Dur::from_ns(150),
            wire_latency: Dur::from_ns(100),
            switch_latency: Dur::from_ns(100),
            rx_forward: Dur::from_ns(100),
            pcie_link: LinkParams::gen3_x8().with_latency(Dur::from_ns(150)),
            tags: 16,
        }
    }
}

impl IbParams {
    /// FDR preset (the §IV-B1 "< 1 µs" comparison point).
    pub fn fdr() -> Self {
        IbParams {
            speed: IbSpeed::Fdr,
            hca_setup: Dur::from_ns(100),
            wire_latency: Dur::from_ns(70),
            switch_latency: Dur::from_ns(80),
            rx_forward: Dur::from_ns(80),
            ..IbParams::default()
        }
    }

    /// Link parameters of one rail (wire model reuses the PCIe link
    /// machinery with an overridden byte rate).
    pub fn rail_link(&self) -> LinkParams {
        LinkParams::gen2_x8()
            .with_rate(self.speed.rail_rate())
            .with_latency(self.wire_latency)
            .with_max_payload(self.mtu)
    }

    /// Aggregate network bandwidth across rails.
    pub fn aggregate_rate(&self) -> u64 {
        self.speed.rail_rate() * self.rails as u64
    }
}

/// Software costs of the MPI-like runtime.
#[derive(Clone, Copy, Debug)]
pub struct MpiParams {
    /// Messages up to this size use the eager protocol (copied through
    /// pre-registered bounce buffers); larger ones use rendezvous.
    pub eager_threshold: u64,
    /// Per-call software overhead (stack entry, header build).
    pub sw_overhead: Dur,
    /// Receive-side matching overhead.
    pub match_overhead: Dur,
    /// Host memcpy rate for bounce-buffer copies.
    pub memcpy_rate: u64,
}

impl Default for MpiParams {
    fn default() -> Self {
        MpiParams {
            eager_threshold: 8192,
            sw_overhead: Dur::from_ns(300),
            match_overhead: Dur::from_ns(200),
            memcpy_rate: 5_000_000_000,
        }
    }
}

/// Costs of the `cudaMemcpy` staging path (the per-step copies of the
/// conventional GPU cluster, §III-A).
#[derive(Clone, Copy, Debug)]
pub struct CudaCopyParams {
    /// Fixed launch/driver overhead per copy call.
    pub launch: Dur,
    /// Device-to-host copy rate (pinned staging).
    pub d2h_rate: u64,
    /// Host-to-device copy rate.
    pub h2d_rate: u64,
}

impl Default for CudaCopyParams {
    fn default() -> Self {
        CudaCopyParams {
            launch: Dur::from_us(7),
            d2h_rate: 6_000_000_000,
            h2d_rate: 6_200_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_dual_rail_is_table_i_bandwidth() {
        let p = IbParams::default();
        // Table I: dual-rail QDR ≈ 8 GB/s raw (we carry 6.4 GB/s payload).
        assert_eq!(p.aggregate_rate(), 6_400_000_000);
        assert_eq!(p.rails, 2);
    }

    #[test]
    fn rail_link_uses_override_rate() {
        let p = IbParams::default();
        assert_eq!(p.rail_link().raw_bytes_per_sec(), 3_200_000_000);
        assert_eq!(p.rail_link().max_payload, 2048);
    }

    #[test]
    fn fdr_is_faster_than_qdr() {
        assert!(IbSpeed::Fdr.rail_rate() > IbSpeed::Qdr.rail_rate());
        assert!(IbParams::fdr().wire_latency < IbParams::default().wire_latency);
    }
}
