//! The MPI-like runtime over InfiniBand — the software stack whose
//! overheads TCA eliminates (§I: "The TCA architecture can eliminate
//! protocol overhead, such as that associated with InfiniBand and MPI, as
//! well as the memory copy overhead").
//!
//! Implements the two classic point-to-point protocols:
//! * **eager** (small messages): sender copies into a pre-registered
//!   bounce buffer, RDMA-writes it to the receiver's bounce buffer, and
//!   the receiver copies out after matching;
//! * **rendezvous** (large messages): an RTS/CTS control round-trip
//!   followed by a zero-copy RDMA write into the destination buffer.
//!
//! GPU data additionally pays the §III-A three-step staging:
//! `cudaMemcpy` D2H → network → `cudaMemcpy` H2D — or uses
//! GPUDirect-RDMA-over-IB (§V), where the HCA reads the pinned GPU BAR
//! directly (and inherits its 830 MB/s read ceiling, as era hardware did).
//!
//! The runtime is host software, so it runs at harness level: every
//! software cost advances the simulation clock through a timer, every
//! byte moves through the simulated fabric.

use crate::cluster::IbNetwork;
use crate::hca::{IbHca, SendOp};
use crate::params::{CudaCopyParams, MpiParams};
use tca_device::node::Node;
use tca_device::{Gpu, HostBridge};
use tca_pcie::{DeviceId, Fabric};
use tca_sim::{Dur, SimTime, TraceCtx};

/// Point-to-point protocol selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// Force the eager path.
    Eager,
    /// Force the rendezvous path.
    Rendezvous,
    /// Pick by `eager_threshold`, like a real MPI.
    Auto,
}

/// Records a phase segment `[start, now]` against an MPI root span, when
/// tracing is on. Pure data collection: never touches simulated time.
fn span_seg(f: &mut Fabric, span: Option<TraceCtx>, name: &str, start: SimTime) {
    if let Some(sp) = span {
        let now = f.now();
        f.spans_mut().segment(sp, name, start, now, None);
    }
}

/// Fixed DRAM regions the runtime owns on every node.
const MAILBOX_BASE: u64 = 0x0300_0000;
const CTRL_BASE: u64 = 0x0380_0000;
const SEND_BOUNCE: u64 = 0x0500_0000;
const RECV_BOUNCE: u64 = 0x0600_0000;
/// Staging buffers for the three-step GPU path.
const GPU_STAGE: u64 = 0x0800_0000;

/// The communication world: nodes + IB network + software parameters.
pub struct MpiWorld {
    /// Node handles (index == rank == IB node id).
    pub nodes: Vec<Node>,
    /// The InfiniBand network.
    pub net: IbNetwork,
    /// Software cost model.
    pub mpi: MpiParams,
    /// CUDA staging cost model.
    pub cuda: CudaCopyParams,
    seq: u32,
}

impl MpiWorld {
    /// Builds a world over prepared nodes and an attached network.
    pub fn new(nodes: Vec<Node>, net: IbNetwork) -> Self {
        MpiWorld {
            nodes,
            net,
            mpi: MpiParams::default(),
            cuda: CudaCopyParams::default(),
            seq: 0,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    fn next_seq(&mut self) -> u32 {
        self.seq += 1;
        self.seq
    }

    /// Burns host software time on `rank` (the clock advances through the
    /// event queue, keeping everything deterministic).
    pub fn advance(&self, f: &mut Fabric, rank: usize, d: Dur) {
        if d == Dur::ZERO {
            return;
        }
        f.schedule_timer(self.nodes[rank].host, d, 0);
        f.run_until_idle();
    }

    /// Posts an RDMA write and runs the fabric until its completion flags
    /// land on the destination node.
    fn post_and_wait(
        &mut self,
        f: &mut Fabric,
        src_rank: usize,
        dst_rank: usize,
        src: u64,
        dst: u64,
        len: u64,
    ) {
        let val = self.next_seq();
        let flags_addr = MAILBOX_BASE + src_rank as u64 * 64;
        let rails = self.net.params.rails;
        f.drive::<IbHca, _>(self.net.hcas[src_rank], |h, ctx| {
            h.post(
                SendOp {
                    src,
                    dst_node: dst_rank as u32,
                    dst,
                    len,
                    flags_addr,
                    flag_value: val,
                },
                ctx,
            );
        });
        f.run_until_idle();
        let core = f.device::<HostBridge>(self.nodes[dst_rank].host).core();
        for r in 0..rails {
            assert_eq!(
                core.mem_ref().read_u32(flags_addr + r as u64 * 4),
                val,
                "rail {r} flag missing after idle — transport bug"
            );
        }
    }

    /// `MPI_Send`/`MPI_Recv` pair between host buffers; returns elapsed
    /// simulated time.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI call signature
    pub fn send(
        &mut self,
        f: &mut Fabric,
        src_rank: usize,
        dst_rank: usize,
        src_addr: u64,
        dst_addr: u64,
        len: u64,
        proto: Protocol,
    ) -> Dur {
        assert!(len > 0);
        let eager = match proto {
            Protocol::Eager => true,
            Protocol::Rendezvous => false,
            Protocol::Auto => len <= self.mpi.eager_threshold,
        };
        let t0 = f.now();
        // Protocol accounting: which path carried each message, and the
        // payload volume (the overhead TCA eliminates, §I).
        let hub = f.metrics_mut();
        let c = hub.counter(if eager {
            "mpi.eager_sends"
        } else {
            "mpi.rndv_sends"
        });
        hub.inc(c);
        let m = hub.meter("mpi.payload_bytes");
        hub.record_bytes(m, t0, len);
        let span = f
            .spans_mut()
            .start_root(if eager { "mpi.eager" } else { "mpi.rndv" }, t0, None);
        let mut mark = f.now();
        self.advance(f, src_rank, self.mpi.sw_overhead);
        span_seg(f, span, "sw_overhead", mark);
        if eager {
            // Sender copy into the registered bounce buffer.
            let data = f
                .device::<HostBridge>(self.nodes[src_rank].host)
                .core()
                .mem_ref()
                .read(src_addr, len as usize);
            f.device_mut::<HostBridge>(self.nodes[src_rank].host)
                .core_mut()
                .mem()
                .write(SEND_BOUNCE, &data);
            mark = f.now();
            self.advance(f, src_rank, Dur::for_bytes(len, self.mpi.memcpy_rate));
            span_seg(f, span, "memcpy", mark);
            mark = f.now();
            self.post_and_wait(f, src_rank, dst_rank, SEND_BOUNCE, RECV_BOUNCE, len);
            span_seg(f, span, "rdma_write", mark);
            // Receiver match + copy-out.
            mark = f.now();
            self.advance(f, dst_rank, self.mpi.match_overhead);
            span_seg(f, span, "match", mark);
            let data = f
                .device::<HostBridge>(self.nodes[dst_rank].host)
                .core()
                .mem_ref()
                .read(RECV_BOUNCE, len as usize);
            f.device_mut::<HostBridge>(self.nodes[dst_rank].host)
                .core_mut()
                .mem()
                .write(dst_addr, &data);
            mark = f.now();
            self.advance(f, dst_rank, Dur::for_bytes(len, self.mpi.memcpy_rate));
            span_seg(f, span, "memcpy", mark);
        } else {
            // RTS (sender → receiver control message).
            f.device_mut::<HostBridge>(self.nodes[src_rank].host)
                .core_mut()
                .mem()
                .write_u64(CTRL_BASE, len);
            mark = f.now();
            self.post_and_wait(f, src_rank, dst_rank, CTRL_BASE, CTRL_BASE, 8);
            span_seg(f, span, "rts", mark);
            mark = f.now();
            self.advance(f, dst_rank, self.mpi.match_overhead);
            span_seg(f, span, "match", mark);
            // CTS (receiver → sender: destination ready).
            f.device_mut::<HostBridge>(self.nodes[dst_rank].host)
                .core_mut()
                .mem()
                .write_u64(CTRL_BASE + 8, dst_addr);
            mark = f.now();
            self.post_and_wait(f, dst_rank, src_rank, CTRL_BASE + 8, CTRL_BASE + 8, 8);
            span_seg(f, span, "cts", mark);
            // Zero-copy payload.
            mark = f.now();
            self.post_and_wait(f, src_rank, dst_rank, src_addr, dst_addr, len);
            span_seg(f, span, "rdma_write", mark);
            mark = f.now();
            self.advance(f, dst_rank, self.mpi.match_overhead);
            span_seg(f, span, "match", mark);
        }
        if let Some(sp) = span {
            let now = f.now();
            f.spans_mut().end_root(sp, now);
        }
        f.now().since(t0)
    }

    /// `cudaMemcpy` device→host: moves real bytes and charges launch +
    /// copy time.
    pub fn cuda_d2h(
        &self,
        f: &mut Fabric,
        rank: usize,
        gpu: DeviceId,
        gpu_addr: u64,
        host_addr: u64,
        len: u64,
    ) -> Dur {
        let t0 = f.now();
        let data = f.device::<Gpu>(gpu).gddr_ref().read(gpu_addr, len as usize);
        f.device_mut::<HostBridge>(self.nodes[rank].host)
            .core_mut()
            .mem()
            .write(host_addr, &data);
        self.advance(
            f,
            rank,
            self.cuda.launch + Dur::for_bytes(len, self.cuda.d2h_rate),
        );
        f.now().since(t0)
    }

    /// `cudaMemcpy` host→device.
    pub fn cuda_h2d(
        &self,
        f: &mut Fabric,
        rank: usize,
        gpu: DeviceId,
        host_addr: u64,
        gpu_addr: u64,
        len: u64,
    ) -> Dur {
        let t0 = f.now();
        let data = f
            .device::<HostBridge>(self.nodes[rank].host)
            .core()
            .mem_ref()
            .read(host_addr, len as usize);
        f.device_mut::<Gpu>(gpu).gddr().write(gpu_addr, &data);
        self.advance(
            f,
            rank,
            self.cuda.launch + Dur::for_bytes(len, self.cuda.h2d_rate),
        );
        f.now().since(t0)
    }

    /// The conventional three-step GPU-to-GPU transfer (§III-A):
    /// D2H copy, MPI over IB, H2D copy.
    #[allow(clippy::too_many_arguments)]
    pub fn send_gpu_staged(
        &mut self,
        f: &mut Fabric,
        src_rank: usize,
        src_gpu_addr: u64,
        dst_rank: usize,
        dst_gpu_addr: u64,
        len: u64,
        proto: Protocol,
    ) -> Dur {
        let t0 = f.now();
        let src_gpu = self.nodes[src_rank].gpus[0];
        let dst_gpu = self.nodes[dst_rank].gpus[0];
        self.cuda_d2h(f, src_rank, src_gpu, src_gpu_addr, GPU_STAGE, len);
        self.send(f, src_rank, dst_rank, GPU_STAGE, GPU_STAGE, len, proto);
        self.cuda_h2d(f, dst_rank, dst_gpu, GPU_STAGE, dst_gpu_addr, len);
        f.now().since(t0)
    }

    /// GPUDirect-RDMA-over-IB (§V): zero-copy between *pinned* GPU
    /// regions; the HCA gathers straight from the source GPU BAR.
    /// Caller provides PCIe (BAR) addresses from [`Gpu::pin`].
    pub fn send_gpu_gpudirect(
        &mut self,
        f: &mut Fabric,
        src_rank: usize,
        src_bar_addr: u64,
        dst_rank: usize,
        dst_bar_addr: u64,
        len: u64,
    ) -> Dur {
        let t0 = f.now();
        let span = f.spans_mut().start_root("mpi.gpudirect", t0, None);
        let mut mark = t0;
        self.advance(f, src_rank, self.mpi.sw_overhead);
        span_seg(f, span, "sw_overhead", mark);
        mark = f.now();
        self.post_and_wait(f, src_rank, dst_rank, src_bar_addr, dst_bar_addr, len);
        span_seg(f, span, "rdma_write", mark);
        if let Some(sp) = span {
            let now = f.now();
            f.spans_mut().end_root(sp, now);
        }
        f.now().since(t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::attach_ib;
    use crate::params::IbParams;
    use tca_device::node::{build_node, NodeConfig};

    fn world(n: usize) -> (Fabric, MpiWorld) {
        let mut f = Fabric::new();
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
            .collect();
        let net = attach_ib(&mut f, &mut nodes, IbParams::default());
        (f, MpiWorld::new(nodes, net))
    }

    #[test]
    fn eager_send_delivers_payload() {
        let (mut f, mut w) = world(2);
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x100_0000, 4096, 0x11);
        let d = w.send(&mut f, 0, 1, 0x100_0000, 0x200_0000, 4096, Protocol::Eager);
        assert!(d > Dur::ZERO);
        let host1 = f.device::<HostBridge>(w.nodes[1].host).core();
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0x100_0000, &host1.mem_ref().read(0x200_0000, 4096));
        assert!(chk.verify_pattern(0x100_0000, 4096, 0x11).is_ok());
    }

    #[test]
    fn rendezvous_send_delivers_payload() {
        let (mut f, mut w) = world(2);
        let len = 256 * 1024u64;
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x100_0000, len, 0x22);
        let d = w.send(
            &mut f,
            0,
            1,
            0x100_0000,
            0x200_0000,
            len,
            Protocol::Rendezvous,
        );
        assert!(d > Dur::ZERO);
        let host1 = f.device::<HostBridge>(w.nodes[1].host).core();
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0x100_0000, &host1.mem_ref().read(0x200_0000, len as usize));
        assert!(chk.verify_pattern(0x100_0000, len, 0x22).is_ok());
    }

    #[test]
    fn auto_protocol_switches_at_threshold() {
        let (mut f, mut w) = world(2);
        // Rendezvous pays two extra control trips: for a tiny message the
        // auto (eager) path must beat forced rendezvous.
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x100_0000, 64, 1);
        let auto = w.send(&mut f, 0, 1, 0x100_0000, 0x200_0000, 64, Protocol::Auto);
        let rndv = w.send(
            &mut f,
            0,
            1,
            0x100_0000,
            0x210_0000,
            64,
            Protocol::Rendezvous,
        );
        assert!(auto < rndv, "auto={auto} rndv={rndv}");
        // For a large message auto (rendezvous) must beat forced eager
        // (which pays two full-size memcpies).
        let len = 1u64 << 20;
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x300_0000, len, 2);
        let auto_l = w.send(&mut f, 0, 1, 0x300_0000, 0x400_0000, len, Protocol::Auto);
        let eager_l = w.send(&mut f, 0, 1, 0x300_0000, 0x500_0000, len, Protocol::Eager);
        assert!(auto_l < eager_l, "auto={auto_l} eager={eager_l}");
    }

    #[test]
    fn protocol_counters_track_each_path() {
        let (mut f, mut w) = world(2);
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x100_0000, 4096, 3);
        w.send(&mut f, 0, 1, 0x100_0000, 0x200_0000, 64, Protocol::Auto);
        w.send(&mut f, 0, 1, 0x100_0000, 0x210_0000, 64, Protocol::Eager);
        w.send(
            &mut f,
            0,
            1,
            0x100_0000,
            0x220_0000,
            4096,
            Protocol::Rendezvous,
        );
        let snap = f.metrics_snapshot();
        assert_eq!(snap.counter("mpi.eager_sends"), Some(2));
        assert_eq!(snap.counter("mpi.rndv_sends"), Some(1));
        match snap.get("mpi.payload_bytes") {
            Some(tca_sim::MetricValue::Bandwidth { bytes, .. }) => {
                assert_eq!(*bytes, 64 + 64 + 4096);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn staged_gpu_send_moves_gddr_to_gddr() {
        let (mut f, mut w) = world(2);
        let len = 64 * 1024u64;
        {
            let g = f.device_mut::<Gpu>(w.nodes[0].gpus[0]);
            let a = g.alloc(len);
            g.gddr().fill_pattern(a, len, 0x33);
        }
        {
            let g = f.device_mut::<Gpu>(w.nodes[1].gpus[0]);
            let _ = g.alloc(len);
        }
        let d = w.send_gpu_staged(&mut f, 0, 0, 1, 0, len, Protocol::Auto);
        // Two cudaMemcpy launches alone are 14 µs.
        assert!(d > Dur::from_us(14), "d={d}");
        let g = f.device::<Gpu>(w.nodes[1].gpus[0]);
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0, &g.gddr_ref().read(0, len as usize));
        assert!(chk.verify_pattern(0, len, 0x33).is_ok());
    }

    #[test]
    fn gpudirect_beats_staging_on_latency_but_not_bandwidth() {
        let (mut f, mut w) = world(2);
        let len_small = 64u64;
        let len_big = 1u64 << 20;
        let (src_bar, dst_bar) = {
            let g = f.device_mut::<Gpu>(w.nodes[0].gpus[0]);
            let a = g.alloc(len_big);
            g.gddr().fill_pattern(a, len_big, 0x44);
            let t = g.p2p_token(a, len_big);
            let s = g.pin(a, len_big, t);
            let g = f.device_mut::<Gpu>(w.nodes[1].gpus[0]);
            let b = g.alloc(len_big);
            let t = g.p2p_token(b, len_big);
            let d = g.pin(b, len_big, t);
            (s, d)
        };
        let direct_small = w.send_gpu_gpudirect(&mut f, 0, src_bar, 1, dst_bar, len_small);
        let staged_small = w.send_gpu_staged(&mut f, 0, 0, 1, 0, len_small, Protocol::Auto);
        assert!(
            direct_small < staged_small / 3,
            "direct={direct_small} staged={staged_small}"
        );
        // Large transfers: GPUDirect reads are stuck at ~830 MB/s while the
        // staged pipeline streams at GB/s — staging wins on bandwidth.
        let direct_big = w.send_gpu_gpudirect(&mut f, 0, src_bar, 1, dst_bar, len_big);
        let staged_big = w.send_gpu_staged(&mut f, 0, 0, 1, 0, len_big, Protocol::Auto);
        assert!(
            staged_big < direct_big,
            "staged={staged_big} direct={direct_big}"
        );
        // Data integrity on the direct path.
        let g = f.device::<Gpu>(w.nodes[1].gpus[0]);
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0, &g.gddr_ref().read(0, len_big as usize));
        assert!(chk.verify_pattern(0, len_big, 0x44).is_ok());
    }

    #[test]
    fn host_pingpong_latency_is_microseconds() {
        let (mut f, mut w) = world(2);
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .write(0x100_0000, &[1u8; 8]);
        let fwd = w.send(&mut f, 0, 1, 0x100_0000, 0x200_0000, 8, Protocol::Eager);
        let back = w.send(&mut f, 1, 0, 0x200_0000, 0x100_0100, 8, Protocol::Eager);
        let half = (fwd + back) / 2;
        // Era-accurate MPI/IB half-round-trip: a few microseconds —
        // several times the 0.78 µs TCA PIO latency.
        let us = half.as_us_f64();
        assert!((1.0..6.0).contains(&us), "half-rtt={us} µs");
    }
}
