//! Wiring HCAs and switches onto a set of nodes.
//!
//! Every HA-PACS node carries an InfiniBand interface in addition to (on
//! HA-PACS/TCA) the PEACH2 board — the hierarchy of §II-B: "TCA
//! interconnect for local communication with low latency and InfiniBand
//! for global communication with high bandwidth". The attach function
//! works on any [`Node`], so a sub-cluster can have both networks at once.

use crate::hca::{IbHca, IbSwitch};
use crate::params::IbParams;
use tca_device::node::Node;
use tca_device::HostBridge;
use tca_pcie::{DeviceId, Fabric, PortIdx};

/// Handles to an InfiniBand network over a set of nodes.
pub struct IbNetwork {
    /// Per-node HCA devices (index == node id).
    pub hcas: Vec<DeviceId>,
    /// One switch per rail.
    pub switches: Vec<DeviceId>,
    /// Parameters the network was built with.
    pub params: IbParams,
}

/// Attaches one HCA per node and cables every rail to its own switch.
pub fn attach_ib(fabric: &mut Fabric, nodes: &mut [Node], params: IbParams) -> IbNetwork {
    assert!(!nodes.is_empty());
    let switches: Vec<DeviceId> = (0..params.rails)
        .map(|r| {
            let name = format!("ibsw{r}");
            fabric.add_device(|id| IbSwitch::new(id, name, params.switch_latency))
        })
        .collect();
    let mut hcas = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter_mut().enumerate() {
        let name = format!("hca.n{i}");
        let hca = fabric.add_device(|id| IbHca::new(id, name, i as u32, params));
        let host_port = node.claim_port();
        fabric.connect((node.host, host_port), (hca, PortIdx(0)), params.pcie_link);
        {
            let hb = fabric.device_mut::<HostBridge>(node.host);
            hb.core_mut().add_id_route(hca, host_port);
        }
        for (r, &sw) in switches.iter().enumerate() {
            fabric.connect(
                (hca, PortIdx(1 + r as u8)),
                (sw, PortIdx(i as u8)),
                params.rail_link(),
            );
        }
        hcas.push(hca);
    }
    IbNetwork {
        hcas,
        switches,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca::SendOp;
    use tca_device::node::{build_node, NodeConfig};

    #[test]
    fn rdma_write_lands_in_remote_dram() {
        let mut f = Fabric::new();
        let mut nodes: Vec<Node> = (0..3)
            .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
            .collect();
        let net = attach_ib(&mut f, &mut nodes, IbParams::default());
        // Node 0 sends 64 KiB to node 2's DRAM.
        f.device_mut::<HostBridge>(nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x10_0000, 64 * 1024, 0xab);
        f.drive::<IbHca, _>(net.hcas[0], |h, ctx| {
            h.post(
                SendOp {
                    src: 0x10_0000,
                    dst_node: 2,
                    dst: 0x20_0000,
                    len: 64 * 1024,
                    flags_addr: 0x30_0000,
                    flag_value: 7,
                },
                ctx,
            );
        });
        f.run_until_idle();
        let host2 = f.device::<HostBridge>(nodes[2].host).core();
        let data = host2.mem_ref().read(0x20_0000, 64 * 1024);
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0x10_0000, &data);
        assert!(chk.verify_pattern(0x10_0000, 64 * 1024, 0xab).is_ok());
        // Both rail flags written.
        assert_eq!(host2.mem_ref().read_u32(0x30_0000), 7);
        assert_eq!(host2.mem_ref().read_u32(0x30_0004), 7);
        // Frames went through both rails' switches.
        assert!(f.device::<IbSwitch>(net.switches[0]).switched.get() > 0);
        assert!(f.device::<IbSwitch>(net.switches[1]).switched.get() > 0);
        assert!(f.device::<IbHca>(net.hcas[0]).idle());
    }

    #[test]
    fn dual_rail_bandwidth_exceeds_single_rail() {
        let run = |rails: u8| {
            let mut f = Fabric::new();
            let mut nodes: Vec<Node> = (0..2)
                .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
                .collect();
            let params = IbParams {
                rails,
                ..IbParams::default()
            };
            let net = attach_ib(&mut f, &mut nodes, params);
            let len = 1u64 << 20;
            f.device_mut::<HostBridge>(nodes[0].host)
                .core_mut()
                .mem()
                .fill_pattern(0x10_0000, len, 1);
            let t0 = f.now();
            f.drive::<IbHca, _>(net.hcas[0], |h, ctx| {
                h.post(
                    SendOp {
                        src: 0x10_0000,
                        dst_node: 1,
                        dst: 0x20_0000,
                        len,
                        flags_addr: 0x30_0000,
                        flag_value: 1,
                    },
                    ctx,
                );
            });
            let end = f.run_until_idle();
            len as f64 / end.since(t0).as_s_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(two > 1.6 * one, "one={one:.3e} two={two:.3e}");
        // Dual-rail QDR approaches its 6.4 GB/s aggregate.
        assert!(two > 5.0e9, "two={two:.3e}");
    }

    #[test]
    fn chained_ops_execute_in_order() {
        let mut f = Fabric::new();
        let mut nodes: Vec<Node> = (0..2)
            .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
            .collect();
        let net = attach_ib(&mut f, &mut nodes, IbParams::default());
        f.device_mut::<HostBridge>(nodes[0].host)
            .core_mut()
            .mem()
            .write(0x1000, b"first");
        f.device_mut::<HostBridge>(nodes[0].host)
            .core_mut()
            .mem()
            .write(0x2000, b"second");
        f.drive::<IbHca, _>(net.hcas[0], |h, ctx| {
            for (src, dst, v) in [(0x1000u64, 0x9000u64, 1u32), (0x2000, 0xa000, 2)] {
                h.post(
                    SendOp {
                        src,
                        dst_node: 1,
                        dst,
                        len: 6,
                        flags_addr: 0xb000 + v as u64 * 16,
                        flag_value: v,
                    },
                    ctx,
                );
            }
        });
        f.run_until_idle();
        let host1 = f.device::<HostBridge>(nodes[1].host).core();
        assert_eq!(&host1.mem_ref().read(0x9000, 5), b"first");
        assert_eq!(&host1.mem_ref().read(0xa000, 6), b"second");
        assert_eq!(host1.mem_ref().read_u32(0xb010), 1);
        assert_eq!(host1.mem_ref().read_u32(0xb020), 2);
    }

    #[test]
    fn gpudirect_rdma_read_source_is_throttled() {
        use tca_device::Gpu;
        // HCA reading from a pinned GPU BAR source hits the same 830 MB/s
        // translation path PEACH2 does — the era-accurate GPUDirect-RDMA
        // send-side limitation.
        let mut f = Fabric::new();
        let mut nodes: Vec<Node> = (0..2)
            .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
            .collect();
        let net = attach_ib(&mut f, &mut nodes, IbParams::default());
        let len = 256u64 * 1024;
        let src = {
            let g = f.device_mut::<Gpu>(nodes[0].gpus[0]);
            let a = g.alloc(len);
            g.gddr().fill_pattern(a, len, 0x5a);
            let t = g.p2p_token(a, len);
            g.pin(a, len, t)
        };
        let t0 = f.now();
        f.drive::<IbHca, _>(net.hcas[0], |h, ctx| {
            h.post(
                SendOp {
                    src,
                    dst_node: 1,
                    dst: 0x40_0000,
                    len,
                    flags_addr: 0x50_0000,
                    flag_value: 9,
                },
                ctx,
            );
        });
        let end = f.run_until_idle();
        let bw = len as f64 / end.since(t0).as_s_f64();
        assert!(bw < 850e6, "bw={bw:.3e}");
        let host1 = f.device::<HostBridge>(nodes[1].host).core();
        let mut chk = tca_pcie::PageMemory::new();
        chk.write(0, &host1.mem_ref().read(0x40_0000, len as usize));
        assert!(chk.verify_pattern(0, len, 0x5a).is_ok());
    }
}
