//! The InfiniBand HCA and switch models.
//!
//! The baseline interconnect of the HA-PACS base cluster (Table I):
//! Mellanox Connect-X3 dual-port QDR, fat tree with full bisection — which
//! we model as one switch per rail, since the experiments never oversubscribe
//! a fat tree with full bisection bandwidth.
//!
//! The HCA is an RDMA-write engine: a posted [`SendOp`] gathers the local
//! source with PCIe reads (through the same tag-limited machinery as the
//! PEACH2 DMAC — including the slow GPU BAR read path when the source is
//! GPU memory), streams MTU-sized frames across the rails, and finally
//! writes per-rail flag words into the receiver's mailbox so software can
//! detect completion. Frames are TLP-shaped on the wire: the ≈24-byte
//! overhead stands in for the comparable LRH/BTH/CRC framing of real IB.
//!
//! Frames carry a *node-tagged* address ([`ib_addr`]): the top 16 bits name
//! the destination node (switch routing key), the low 48 bits the address
//! in the destination node's local PCIe space. The receiving HCA strips
//! the tag and re-segments into MPS-sized TLPs toward host/GPU memory —
//! the protocol conversion PEACH2 exists to avoid (§V).

use crate::params::IbParams;
use std::collections::HashMap;
use tca_pcie::{Ctx, Device, DeviceId, PortIdx, ReadReassembly, TagPool, Tlp, TlpKind};
use tca_sim::{Counter, CounterId, GaugeId, MetricsHub, TraceLevel};

/// Bit position of the node tag in an IB wire address.
pub const IB_NODE_SHIFT: u32 = 48;

/// Encodes a destination (node, local address) into an IB wire address.
#[track_caller]
pub fn ib_addr(node: u32, local: u64) -> u64 {
    assert!(local < 1 << IB_NODE_SHIFT, "local address too large");
    ((node as u64) << IB_NODE_SHIFT) | local
}

/// Decodes an IB wire address.
pub fn ib_decode(addr: u64) -> (u32, u64) {
    (
        (addr >> IB_NODE_SHIFT) as u32,
        addr & ((1 << IB_NODE_SHIFT) - 1),
    )
}

/// One RDMA-write work request.
#[derive(Clone, Copy, Debug)]
pub struct SendOp {
    /// Local PCIe source address (host DRAM or pinned GPU BAR).
    pub src: u64,
    /// Destination node id.
    pub dst_node: u32,
    /// Destination address in the remote node's local space.
    pub dst: u64,
    /// Payload length.
    pub len: u64,
    /// Remote mailbox (host DRAM): one u32 flag per rail is written there
    /// after the rail's last data frame.
    pub flags_addr: u64,
    /// Value written to the flags (a sequence number).
    pub flag_value: u32,
}

const T_SETUP: u64 = 1 << 56;
const T_FWD: u64 = 2 << 56;
const KIND_MASK: u64 = 0xff << 56;

struct ActiveSend {
    op: SendOp,
    buf: ReadReassembly,
    received: u64,
    issued: u64,
    /// Next byte to cut into frames (contiguous prefix only).
    framed: u64,
    frame_seq: u64,
}

/// The HCA device. Port 0 is the PCIe slot; ports `1..=rails` are rails.
pub struct IbHca {
    id: DeviceId,
    name: String,
    node: u32,
    params: IbParams,
    tags: TagPool,
    reads: HashMap<u16, (u64, u32)>, // tag -> (offset, len)
    queue: Vec<SendOp>,
    active: Option<ActiveSend>,
    setup_pending: bool,
    pending_fwd: Vec<Option<(PortIdx, Tlp)>>,
    fwd_free: Vec<usize>,
    /// Frames sent onto the network.
    pub frames_tx: Counter,
    /// Frames received from the network.
    pub frames_rx: Counter,
    /// Metric ids cached on first publish (send-queue gauge, tx/rx
    /// counters, reads-in-flight gauge).
    metric_ids: Option<(GaugeId, CounterId, CounterId, GaugeId)>,
}

impl IbHca {
    /// Creates an HCA for `node`.
    pub fn new(id: DeviceId, name: impl Into<String>, node: u32, params: IbParams) -> Self {
        IbHca {
            id,
            name: name.into(),
            node,
            params,
            tags: TagPool::new(params.tags),
            reads: HashMap::new(),
            queue: Vec::new(),
            active: None,
            setup_pending: false,
            pending_fwd: Vec::new(),
            fwd_free: Vec::new(),
            frames_tx: Counter::new(),
            frames_rx: Counter::new(),
            metric_ids: None,
        }
    }

    /// Posts a work request (doorbell). The HCA begins after `hca_setup`.
    pub fn post(&mut self, op: SendOp, ctx: &mut Ctx<'_>) {
        assert!(op.len > 0, "empty SendOp");
        self.queue.push(op);
        self.try_start(ctx);
    }

    /// True when no work is queued or in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_none() && !self.setup_pending
    }

    fn try_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_some() || self.setup_pending || self.queue.is_empty() {
            return;
        }
        self.setup_pending = true;
        ctx.timer_in(self.params.hca_setup, T_SETUP);
    }

    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        self.setup_pending = false;
        let op = self.queue.remove(0);
        self.active = Some(ActiveSend {
            buf: ReadReassembly::new(op.len as usize),
            op,
            received: 0,
            issued: 0,
            framed: 0,
            frame_seq: 0,
        });
        self.pump_reads(ctx);
    }

    fn pump_reads(&mut self, ctx: &mut Ctx<'_>) {
        let Some(a) = &mut self.active else { return };
        let mrrs = self.params.pcie_link.max_read_request as u64;
        while a.issued < a.op.len {
            let Some(tag) = self.tags.alloc() else { break };
            let n = mrrs.min(a.op.len - a.issued) as u32;
            self.reads.insert(tag.0, (a.issued, n));
            ctx.send(PortIdx(0), Tlp::read(a.op.src + a.issued, n, tag, self.id));
            a.issued += n as u64;
        }
    }

    /// Cuts the contiguous prefix into MTU frames and sends them.
    fn pump_frames(&mut self, ctx: &mut Ctx<'_>) {
        let rails = self.params.rails as u64;
        let mtu = self.params.mtu as u64;
        let Some(a) = &mut self.active else { return };
        loop {
            let avail = a.received - a.framed;
            let remaining = a.op.len - a.framed;
            let cut = mtu.min(remaining);
            if avail < cut || cut == 0 {
                break;
            }
            // Peek the contiguous prefix out of the reassembly buffer.
            let frame = a.buf.peek(a.framed as usize, cut as usize);
            let rail = PortIdx(1 + (a.frame_seq % rails) as u8);
            let addr = ib_addr(a.op.dst_node, a.op.dst + a.framed);
            ctx.send(rail, Tlp::write(addr, frame));
            self.frames_tx.inc();
            a.framed += cut;
            a.frame_seq += 1;
        }
        if a.framed >= a.op.len {
            // All data framed: write the per-rail completion flags, each on
            // its own rail so it orders behind that rail's data.
            let op = a.op;
            for rail in 0..self.params.rails {
                let addr = ib_addr(op.dst_node, op.flags_addr + rail as u64 * 4);
                ctx.send(
                    PortIdx(1 + rail),
                    Tlp::write(addr, op.flag_value.to_le_bytes().to_vec()),
                );
            }
            ctx.trace(TraceLevel::Txn, || {
                format!(
                    "{}: send complete {} B -> node {}",
                    self.name, op.len, op.dst_node
                )
            });
            self.active = None;
            self.try_start(ctx);
        }
    }

    fn forward_after(&mut self, delay: tca_sim::Dur, port: PortIdx, tlp: Tlp, ctx: &mut Ctx<'_>) {
        let slot = if let Some(s) = self.fwd_free.pop() {
            self.pending_fwd[s] = Some((port, tlp));
            s
        } else {
            self.pending_fwd.push(Some((port, tlp)));
            self.pending_fwd.len() - 1
        };
        ctx.timer_in(delay, T_FWD | slot as u64);
    }

    /// Re-segments an inbound frame into host-link TLPs.
    fn deliver_frame(&mut self, addr: u64, data: &[u8], ctx: &mut Ctx<'_>) {
        let (node, local) = ib_decode(addr);
        assert_eq!(node, self.node, "{}: misrouted frame", self.name);
        self.frames_rx.inc();
        let mps = self.params.pcie_link.max_payload as usize;
        for (i, chunk) in data.chunks(mps).enumerate() {
            let tlp = Tlp::write(local + (i * mps) as u64, chunk.to_vec());
            self.forward_after(self.params.rx_forward, PortIdx(0), tlp, ctx);
        }
    }
}

impl Device for IbHca {
    fn on_tlp(&mut self, port: PortIdx, tlp: Tlp, ctx: &mut Ctx<'_>) {
        match tlp.kind {
            TlpKind::Completion {
                tag,
                requester,
                offset,
                ref data,
                last,
            } => {
                assert_eq!(port, PortIdx(0), "completion from the network?");
                assert_eq!(requester, self.id);
                let (req_off, req_len) = *self.reads.get(&tag.0).expect("unknown read tag");
                let a = self.active.as_mut().expect("completion with no active op");
                a.buf.add((req_off + offset as u64) as u32, data);
                a.received += data.len() as u64;
                // A request is finished when its final completion arrives.
                if last && offset + data.len() as u32 >= req_len {
                    self.reads.remove(&tag.0);
                    self.tags.release(tag);
                    self.pump_reads(ctx);
                }
                self.pump_frames(ctx);
            }
            TlpKind::MemWrite { addr, ref data } => {
                assert_ne!(port, PortIdx(0), "{}: host wrote into the HCA", self.name);
                self.deliver_frame(addr, data, ctx);
            }
            other => panic!(
                "{}: unexpected TLP {:?}",
                self.name,
                Tlp {
                    kind: other,
                    span: None
                }
            ),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        match tag & KIND_MASK {
            T_SETUP => self.begin(ctx),
            T_FWD => {
                let slot = (tag & !KIND_MASK) as usize;
                let (port, tlp) = self.pending_fwd[slot].take().expect("empty fwd slot");
                self.fwd_free.push(slot);
                ctx.send(port, tlp);
            }
            k => unreachable!("bad HCA timer kind {k:#x}"),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn publish_metrics(&mut self, hub: &mut MetricsHub) {
        // Ids registered once, reused on every later publish (host-side
        // cache; see `Device::publish_metrics`).
        let (send_q_depth, frames_tx, frames_rx, reads_in_flight) =
            *self.metric_ids.get_or_insert_with(|| {
                let p = &self.name;
                (
                    hub.gauge(format!("{p}.send_q_depth")),
                    hub.counter(format!("{p}.frames_tx")),
                    hub.counter(format!("{p}.frames_rx")),
                    hub.gauge(format!("{p}.reads_in_flight")),
                )
            });
        // Posted work requests waiting plus the one being gathered/framed,
        // so the gauge reads as "operations the HCA has not finished".
        let depth =
            self.queue.len() + usize::from(self.active.is_some()) + usize::from(self.setup_pending);
        hub.gauge_set(send_q_depth, depth as i64);
        hub.counter_sync(frames_tx, self.frames_tx.get());
        hub.counter_sync(frames_rx, self.frames_rx.get());
        hub.gauge_set(reads_in_flight, self.reads.len() as i64);
    }

    fn health_status(&self) -> Option<String> {
        let state = if self.setup_pending {
            "setting up"
        } else if self.active.is_some() {
            "sending"
        } else {
            "idle"
        };
        Some(format!(
            "{state}, {} op(s) queued, {} PCIe read(s) in flight",
            self.queue.len(),
            self.reads.len(),
        ))
    }
}

/// A crossbar switch routing frames by their node tag: port `i` leads to
/// node `i`'s HCA.
pub struct IbSwitch {
    #[allow(dead_code)]
    id: DeviceId,
    name: String,
    latency: tca_sim::Dur,
    pending: Vec<Option<(PortIdx, Tlp)>>,
    free: Vec<usize>,
    /// Frames switched.
    pub switched: Counter,
}

impl IbSwitch {
    /// Creates a switch with the given traversal latency.
    pub fn new(id: DeviceId, name: impl Into<String>, latency: tca_sim::Dur) -> Self {
        IbSwitch {
            id,
            name: name.into(),
            latency,
            pending: Vec::new(),
            free: Vec::new(),
            switched: Counter::new(),
        }
    }
}

impl Device for IbSwitch {
    fn on_tlp(&mut self, _port: PortIdx, tlp: Tlp, ctx: &mut Ctx<'_>) {
        let TlpKind::MemWrite { addr, .. } = &tlp.kind else {
            panic!("{}: switches carry only data frames", self.name);
        };
        let (node, _) = ib_decode(*addr);
        self.switched.inc();
        let out = PortIdx(node as u8);
        let slot = if let Some(s) = self.free.pop() {
            self.pending[s] = Some((out, tlp));
            s
        } else {
            self.pending.push(Some((out, tlp)));
            self.pending.len() - 1
        };
        ctx.timer_in(self.latency, slot as u64);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        let (port, tlp) = self.pending[tag as usize].take().expect("empty slot");
        self.free.push(tag as usize);
        ctx.send(port, tlp);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ib_addr_round_trip() {
        for (n, a) in [(0u32, 0u64), (3, 0x20_0000_0100), (15, (1 << 48) - 1)] {
            let enc = ib_addr(n, a);
            assert_eq!(ib_decode(enc), (n, a));
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_local_addr_rejected() {
        let _ = ib_addr(1, 1 << 48);
    }
}
