//! # tca-net — the baseline interconnect
//!
//! What TCA is compared against: InfiniBand (QDR dual-rail on the base
//! cluster, FDR as the §IV-B1 latency reference) plus an MPI-like runtime
//! with the conventional three-step GPU staging path and a
//! GPUDirect-RDMA-over-IB variant.
//!
//! * [`IbHca`] / [`IbSwitch`] — the network devices; frames move as real
//!   payload-carrying packets over rate-overridden links.
//! * [`attach_ib`] — puts an HCA in every node and cables rails to
//!   switches (works alongside a PEACH2 board: the §II-B hierarchical
//!   network).
//! * [`MpiWorld`] — eager/rendezvous protocols, `cudaMemcpy` staging,
//!   GPUDirect; all software costs advance the simulated clock.
//!
//! ```
//! use tca_net::{ib_addr, ib_decode, IbParams};
//!
//! // Dual-rail QDR (Table I) carries 6.4 GB/s of payload.
//! assert_eq!(IbParams::default().aggregate_rate(), 6_400_000_000);
//! // Frames carry node-tagged addresses through the switches.
//! assert_eq!(ib_decode(ib_addr(5, 0x1234)), (5, 0x1234));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod hca;
pub mod mpi;
pub mod params;

pub use cluster::{attach_ib, IbNetwork};
pub use hca::{ib_addr, ib_decode, IbHca, IbSwitch, SendOp};
pub use mpi::{MpiWorld, Protocol};
pub use params::{CudaCopyParams, IbParams, IbSpeed, MpiParams};
