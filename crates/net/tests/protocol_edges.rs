//! Baseline-stack edge cases: MTU segmentation, protocol crossover, FDR vs
//! QDR scaling, and misuse panics.

use tca_device::node::{build_node, Node, NodeConfig};
use tca_device::HostBridge;
use tca_net::{attach_ib, IbHca, IbParams, IbSwitch, MpiWorld, Protocol, SendOp};
use tca_pcie::Fabric;
use tca_sim::Dur;

fn world(n: usize, params: IbParams) -> (Fabric, MpiWorld) {
    let mut f = Fabric::new();
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| build_node(&mut f, &format!("n{i}"), &NodeConfig::default()))
        .collect();
    let net = attach_ib(&mut f, &mut nodes, params);
    (f, MpiWorld::new(nodes, net))
}

#[test]
fn frames_respect_the_mtu() {
    let (mut f, w) = world(2, IbParams::default());
    f.device_mut::<HostBridge>(w.nodes[0].host)
        .core_mut()
        .mem()
        .fill_pattern(0x4000_0000, 10_000, 1);
    f.drive::<IbHca, _>(w.net.hcas[0], |h, ctx| {
        h.post(
            SendOp {
                src: 0x4000_0000,
                dst_node: 1,
                dst: 0x5000_0000,
                len: 10_000,
                flags_addr: 0x5100_0000,
                flag_value: 1,
            },
            ctx,
        );
    });
    f.run_until_idle();
    // 10 000 B at a 2048 B MTU = 5 frames.
    let tx = f.device::<IbHca>(w.net.hcas[0]).frames_tx.get();
    assert_eq!(tx, 5);
    let rx: u64 = w
        .net
        .hcas
        .iter()
        .map(|&h| f.device::<IbHca>(h).frames_rx.get())
        .sum();
    // Data frames + the 2 per-rail flag frames all arrive at node 1.
    assert_eq!(rx, 7);
}

#[test]
fn protocol_crossover_behaves_like_a_real_mpi() {
    // Around the eager threshold the two protocols should trade places.
    let (mut f, mut w) = world(2, IbParams::default());
    f.device_mut::<HostBridge>(w.nodes[0].host)
        .core_mut()
        .mem()
        .fill_pattern(0x4000_0000, 1 << 20, 2);
    let small = 512u64;
    let eager_s = w.send(
        &mut f,
        0,
        1,
        0x4000_0000,
        0x5000_0000,
        small,
        Protocol::Eager,
    );
    let rndv_s = w.send(
        &mut f,
        0,
        1,
        0x4000_0000,
        0x5200_0000,
        small,
        Protocol::Rendezvous,
    );
    assert!(eager_s < rndv_s, "small: eager {eager_s} < rndv {rndv_s}");
    let big = 1u64 << 20;
    let eager_b = w.send(&mut f, 0, 1, 0x4000_0000, 0x5400_0000, big, Protocol::Eager);
    let rndv_b = w.send(
        &mut f,
        0,
        1,
        0x4000_0000,
        0x5600_0000,
        big,
        Protocol::Rendezvous,
    );
    assert!(rndv_b < eager_b, "big: rndv {rndv_b} < eager {eager_b}");
}

#[test]
fn fdr_beats_qdr_on_latency_and_bandwidth() {
    let run = |p: IbParams| {
        let (mut f, mut w) = world(2, p);
        f.device_mut::<HostBridge>(w.nodes[0].host)
            .core_mut()
            .mem()
            .fill_pattern(0x4000_0000, 1 << 20, 3);
        let lat = w.send(&mut f, 0, 1, 0x4000_0000, 0x5000_0000, 8, Protocol::Eager);
        let bw = w.send(
            &mut f,
            0,
            1,
            0x4000_0000,
            0x5200_0000,
            1 << 20,
            Protocol::Rendezvous,
        );
        (lat, bw)
    };
    let (qdr_lat, qdr_bw) = run(IbParams::default());
    let (fdr_lat, fdr_bw) = run(IbParams::fdr());
    assert!(fdr_lat < qdr_lat, "fdr {fdr_lat} vs qdr {qdr_lat}");
    assert!(fdr_bw < qdr_bw, "1 MiB moves faster on FDR");
}

#[test]
fn switches_count_every_frame() {
    let (mut f, w) = world(3, IbParams::default());
    f.device_mut::<HostBridge>(w.nodes[2].host)
        .core_mut()
        .mem()
        .fill_pattern(0x4000_0000, 4096, 4);
    f.drive::<IbHca, _>(w.net.hcas[2], |h, ctx| {
        h.post(
            SendOp {
                src: 0x4000_0000,
                dst_node: 0,
                dst: 0x5000_0000,
                len: 4096,
                flags_addr: 0x5100_0000,
                flag_value: 9,
            },
            ctx,
        );
    });
    f.run_until_idle();
    let switched: u64 = w
        .net
        .switches
        .iter()
        .map(|&s| f.device::<IbSwitch>(s).switched.get())
        .sum();
    // 2 data frames + 2 flag frames (one per rail).
    assert_eq!(switched, 4);
}

#[test]
fn mpi_advance_burns_exact_time() {
    let (mut f, w) = world(2, IbParams::default());
    let t0 = f.now();
    w.advance(&mut f, 0, Dur::from_us(5));
    assert_eq!(f.now().since(t0), Dur::from_us(5));
}

#[test]
#[should_panic(expected = "empty SendOp")]
fn zero_length_send_rejected() {
    let (mut f, w) = world(2, IbParams::default());
    f.drive::<IbHca, _>(w.net.hcas[0], |h, ctx| {
        h.post(
            SendOp {
                src: 0,
                dst_node: 1,
                dst: 0,
                len: 0,
                flags_addr: 0,
                flag_value: 0,
            },
            ctx,
        );
    });
}
