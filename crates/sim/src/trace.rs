//! Structured simulation tracing.
//!
//! Device models call [`Tracer::emit`] with a closure producing the event
//! payload, so a disabled tracer costs one branch. Events are typed
//! ([`TraceEvent`]: timestamp, originating device, and a [`TraceKind`] that
//! distinguishes instant events from span begin/end pairs), kept in a
//! bounded ring, and can be rendered two ways:
//!
//! * [`Tracer::dump`] — the classic text dump (`[{time}] {text}` lines),
//!   the main debugging tool when a packet-level test fails;
//! * [`Tracer::chrome_trace_json`] — the Chrome trace-event array form
//!   (`ph`/`ts`/`name` fields, timestamps in microseconds), loadable in
//!   Perfetto or `chrome://tracing`. Span begins/ends map to `"B"`/`"E"`
//!   events and thread lanes are device ids, so DMA windows render as bars
//!   per device.
//!
//! Closures may return anything `Into<TraceKind>`; plain `String` payloads
//! become instant events, which keeps every pre-existing call site source
//! compatible.

use crate::json::JsonValue;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Trace verbosity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    /// No tracing (default).
    #[default]
    Off,
    /// Transaction-level: DMA starts/completions, interrupts.
    Txn,
    /// Packet-level: every TLP hop. Very verbose.
    Packet,
}

/// What a trace event describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A point-in-time observation (the classic trace line).
    Instant(String),
    /// Opens a named span; pair with an [`TraceKind::End`] of the same name.
    Begin(String),
    /// Closes the most recent span of this name.
    End(String),
}

impl From<String> for TraceKind {
    fn from(s: String) -> TraceKind {
        TraceKind::Instant(s)
    }
}

impl From<&str> for TraceKind {
    fn from(s: &str) -> TraceKind {
        TraceKind::Instant(s.to_owned())
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant the event was emitted at.
    pub at: SimTime,
    /// Originating device id, when the emitter knew it.
    pub device: Option<u32>,
    /// Payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Renders the payload as the text-dump line body.
    pub fn text(&self) -> String {
        match &self.kind {
            TraceKind::Instant(s) => s.clone(),
            TraceKind::Begin(s) => format!("begin {s}"),
            TraceKind::End(s) => format!("end {s}"),
        }
    }
}

/// A bounded in-memory ring of structured trace events.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceLevel::Off, 4096)
    }
}

impl Tracer {
    /// Creates a tracer keeping at most `capacity` most-recent events.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            level,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Current verbosity.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Changes verbosity at runtime.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Records an event with no device attribution if `level` is enabled.
    /// The closure runs only when the event will actually be stored.
    #[inline]
    pub fn emit<T: Into<TraceKind>>(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        payload: impl FnOnce() -> T,
    ) {
        self.emit_inner(level, at, None, payload);
    }

    /// Records an event attributed to `device` if `level` is enabled.
    #[inline]
    pub fn emit_for<T: Into<TraceKind>>(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        device: u32,
        payload: impl FnOnce() -> T,
    ) {
        self.emit_inner(level, at, Some(device), payload);
    }

    #[inline]
    fn emit_inner<T: Into<TraceKind>>(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        device: Option<u32>,
        payload: impl FnOnce() -> T,
    ) {
        if level <= self.level && level != TraceLevel::Off {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(TraceEvent {
                at,
                device,
                kind: payload().into(),
            });
        }
    }

    /// Number of events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Renders the retained trace as a multi-line string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier lines dropped ...\n", self.dropped));
        }
        for ev in &self.ring {
            out.push_str(&format!("[{}] {}\n", ev.at, ev.text()));
        }
        out
    }

    /// Renders the retained trace as a Chrome trace-event JSON array
    /// (`ph`/`ts`/`name` fields, `ts` in microseconds), loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::with_capacity(self.ring.len());
        for ev in &self.ring {
            let (ph, name) = match &ev.kind {
                TraceKind::Instant(s) => ("i", s),
                TraceKind::Begin(s) => ("B", s),
                TraceKind::End(s) => ("E", s),
            };
            let mut obj = JsonValue::object();
            obj.push("name", JsonValue::from(name.as_str()));
            obj.push("cat", JsonValue::from("sim"));
            obj.push("ph", JsonValue::from(ph));
            obj.push("ts", JsonValue::from(ev.at.as_us_f64()));
            obj.push("pid", JsonValue::from(0u64));
            obj.push("tid", JsonValue::from(u64::from(ev.device.unwrap_or(0))));
            if ph == "i" {
                // Global-scope instant marks render as full-height lines.
                obj.push("s", JsonValue::from("g"));
            }
            events.push(obj);
        }
        JsonValue::Array(events).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_lazy() {
        let mut t = Tracer::default();
        let mut evaluated = false;
        t.emit(TraceLevel::Txn, SimTime::ZERO, || {
            evaluated = true;
            String::from("x")
        });
        assert!(!evaluated, "closure must not run when disabled");
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(TraceLevel::Txn, 16);
        t.emit(TraceLevel::Txn, SimTime::ZERO, || String::from("txn"));
        t.emit(TraceLevel::Packet, SimTime::ZERO, || String::from("pkt"));
        let lines: Vec<_> = t.events().map(TraceEvent::text).collect();
        assert_eq!(lines, ["txn"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(TraceLevel::Packet, 3);
        for i in 0..5 {
            t.emit(TraceLevel::Packet, SimTime::from_ps(i), || format!("l{i}"));
        }
        let lines: Vec<_> = t.events().map(TraceEvent::text).collect();
        assert_eq!(lines, ["l2", "l3", "l4"]);
        assert_eq!(t.dropped(), 2);
        assert!(t.dump().contains("2 earlier lines dropped"));
    }

    #[test]
    fn dump_contains_timestamps() {
        let mut t = Tracer::new(TraceLevel::Txn, 8);
        t.emit(TraceLevel::Txn, SimTime::from_ps(1_500), || {
            String::from("hello")
        });
        let d = t.dump();
        assert!(d.contains("1.500ns") && d.contains("hello"), "{d}");
    }

    #[test]
    fn spans_render_in_dump_and_chrome_json() {
        let mut t = Tracer::new(TraceLevel::Txn, 8);
        t.emit_for(TraceLevel::Txn, SimTime::from_ps(1_000_000), 3, || {
            TraceKind::Begin("dma".into())
        });
        t.emit_for(TraceLevel::Txn, SimTime::from_ps(2_000_000), 3, || {
            TraceKind::End("dma".into())
        });
        t.emit(TraceLevel::Txn, SimTime::from_ps(2_500_000), || {
            String::from("irq")
        });
        let d = t.dump();
        assert!(d.contains("begin dma") && d.contains("end dma"), "{d}");

        let json = t.chrome_trace_json();
        let parsed = crate::json::JsonValue::parse(&json).expect("valid chrome json");
        let events = parsed.as_array().expect("array of events");
        assert_eq!(events.len(), 3);
        let phases: Vec<_> = events
            .iter()
            .map(|e| e.get("ph").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(phases, ["B", "E", "i"]);
        assert_eq!(
            events[0].get("ts").and_then(JsonValue::as_f64),
            Some(1.0),
            "ts is in microseconds"
        );
        assert_eq!(events[0].get("tid").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            events[0].get("name").and_then(JsonValue::as_str),
            Some("dma")
        );
    }
}
