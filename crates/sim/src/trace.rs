//! Lightweight simulation tracing.
//!
//! Device models call [`Tracer::emit`] with a closure producing the line, so
//! a disabled tracer costs one branch. Traces are kept in a bounded ring and
//! can be dumped when a test fails, which is the main debugging tool for a
//! packet-level model.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Trace verbosity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    /// No tracing (default).
    #[default]
    Off,
    /// Transaction-level: DMA starts/completions, interrupts.
    Txn,
    /// Packet-level: every TLP hop. Very verbose.
    Packet,
}

/// A bounded in-memory trace ring.
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    capacity: usize,
    ring: VecDeque<(SimTime, String)>,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceLevel::Off, 4096)
    }
}

impl Tracer {
    /// Creates a tracer keeping at most `capacity` most-recent lines.
    pub fn new(level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            level,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Current verbosity.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Changes verbosity at runtime.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Records a line if `level` is enabled. The closure runs only when the
    /// line will actually be stored.
    #[inline]
    pub fn emit(&mut self, level: TraceLevel, at: SimTime, line: impl FnOnce() -> String) {
        if level <= self.level && level != TraceLevel::Off {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back((at, line()));
        }
    }

    /// Number of lines evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained lines oldest-first.
    pub fn lines(&self) -> impl Iterator<Item = &(SimTime, String)> {
        self.ring.iter()
    }

    /// Renders the retained trace as a multi-line string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier lines dropped ...\n", self.dropped));
        }
        for (t, l) in &self.ring {
            out.push_str(&format!("[{t}] {l}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_lazy() {
        let mut t = Tracer::default();
        let mut evaluated = false;
        t.emit(TraceLevel::Txn, SimTime::ZERO, || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated, "closure must not run when disabled");
        assert_eq!(t.lines().count(), 0);
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(TraceLevel::Txn, 16);
        t.emit(TraceLevel::Txn, SimTime::ZERO, || "txn".into());
        t.emit(TraceLevel::Packet, SimTime::ZERO, || "pkt".into());
        let lines: Vec<_> = t.lines().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, ["txn"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(TraceLevel::Packet, 3);
        for i in 0..5 {
            t.emit(TraceLevel::Packet, SimTime::from_ps(i), || format!("l{i}"));
        }
        let lines: Vec<_> = t.lines().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, ["l2", "l3", "l4"]);
        assert_eq!(t.dropped(), 2);
        assert!(t.dump().contains("2 earlier lines dropped"));
    }

    #[test]
    fn dump_contains_timestamps() {
        let mut t = Tracer::new(TraceLevel::Txn, 8);
        t.emit(TraceLevel::Txn, SimTime::from_ps(1_500), || "hello".into());
        let d = t.dump();
        assert!(d.contains("1.500ns") && d.contains("hello"), "{d}");
    }
}
