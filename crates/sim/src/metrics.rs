//! Fabric-wide metrics registry.
//!
//! [`MetricsHub`] is a name-indexed registry of the four collector kinds in
//! [`crate::stats`]: counters, gauges (with peak watermark), log₂ latency
//! histograms, and bandwidth meters. Device models register a metric once
//! under a hierarchical dot name (`link.3.fwd.credit_stall_ns`,
//! `peach2.1.dma.chain_len`) and then update it through a `Copy` handle, so
//! the hot path is one bounds-checked array access — cheap enough to stay
//! always-on.
//!
//! ## Determinism contract
//!
//! The hub observes simulated time (timestamps passed in by callers) but
//! never advances it: no method schedules events or touches the event
//! queue. [`MetricsHub::snapshot`] is a pure read sorted by metric name, so
//! two runs of the same seed produce byte-identical snapshot JSON, and an
//! instrumented run pops exactly the same events as an uninstrumented one —
//! the determinism tests assert both properties.

use crate::json::JsonValue;
use crate::stats::{BandwidthMeter, LatencyHistogram};
use crate::time::{Dur, SimTime};
use std::collections::HashMap;

/// Handle to a registered counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GaugeId(u32);

/// Handle to a registered latency histogram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistogramId(u32);

/// Handle to a registered bandwidth meter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeterId(u32);

#[derive(Clone, Copy, Debug, Default)]
struct GaugeState {
    current: i64,
    peak: i64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Counter(u32),
    Gauge(u32),
    Histogram(u32),
    Meter(u32),
}

/// Name-indexed registry of always-on metrics.
#[derive(Default)]
pub struct MetricsHub {
    index: HashMap<String, Slot>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, GaugeState)>,
    histograms: Vec<(String, LatencyHistogram)>,
    meters: Vec<(String, BandwidthMeter)>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Registers (or looks up) a counter under `name`.
    ///
    /// A lookup hit returns the existing handle without allocating: the
    /// name is only converted to an owned `String` on first registration.
    /// (Callers on repeated paths should still cache the returned id —
    /// *formatting* a name allocates before this method ever sees it.)
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: impl AsRef<str> + Into<String>) -> CounterId {
        if let Some(slot) = self.index.get(name.as_ref()) {
            match slot {
                Slot::Counter(i) => return CounterId(*i),
                _ => panic!(
                    "metric `{}` already registered with another kind",
                    name.as_ref()
                ),
            }
        }
        let name = name.into();
        let idx = self.counters.len() as u32;
        self.index.insert(name.clone(), Slot::Counter(idx));
        self.counters.push((name, 0));
        CounterId(idx)
    }

    /// Registers (or looks up) a gauge under `name` (allocation-free on
    /// a lookup hit, as for [`MetricsHub::counter`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: impl AsRef<str> + Into<String>) -> GaugeId {
        if let Some(slot) = self.index.get(name.as_ref()) {
            match slot {
                Slot::Gauge(i) => return GaugeId(*i),
                _ => panic!(
                    "metric `{}` already registered with another kind",
                    name.as_ref()
                ),
            }
        }
        let name = name.into();
        let idx = self.gauges.len() as u32;
        self.index.insert(name.clone(), Slot::Gauge(idx));
        self.gauges.push((name, GaugeState::default()));
        GaugeId(idx)
    }

    /// Registers (or looks up) a latency histogram under `name`
    /// (allocation-free on a lookup hit, as for [`MetricsHub::counter`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: impl AsRef<str> + Into<String>) -> HistogramId {
        if let Some(slot) = self.index.get(name.as_ref()) {
            match slot {
                Slot::Histogram(i) => return HistogramId(*i),
                _ => panic!(
                    "metric `{}` already registered with another kind",
                    name.as_ref()
                ),
            }
        }
        let name = name.into();
        let idx = self.histograms.len() as u32;
        self.index.insert(name.clone(), Slot::Histogram(idx));
        self.histograms.push((name, LatencyHistogram::new()));
        HistogramId(idx)
    }

    /// Registers (or looks up) a bandwidth meter under `name`
    /// (allocation-free on a lookup hit, as for [`MetricsHub::counter`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn meter(&mut self, name: impl AsRef<str> + Into<String>) -> MeterId {
        if let Some(slot) = self.index.get(name.as_ref()) {
            match slot {
                Slot::Meter(i) => return MeterId(*i),
                _ => panic!(
                    "metric `{}` already registered with another kind",
                    name.as_ref()
                ),
            }
        }
        let name = name.into();
        let idx = self.meters.len() as u32;
        self.index.insert(name.clone(), Slot::Meter(idx));
        self.meters.push((name, BandwidthMeter::new()));
        MeterId(idx)
    }

    /// Adds one to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1 += n;
    }

    /// Current counter value.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1
    }

    /// Raises a counter to an absolute cumulative `total` (no-op when the
    /// counter already reached it). This is the idempotent publication path
    /// for devices that keep their own cumulative counters and mirror them
    /// into the hub on every snapshot (`Device::publish_metrics`).
    #[inline]
    pub fn counter_sync(&mut self, id: CounterId, total: u64) {
        let c = &mut self.counters[id.0 as usize].1;
        *c = (*c).max(total);
    }

    /// Sets a gauge to an absolute value, tracking the peak.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, value: i64) {
        let g = &mut self.gauges[id.0 as usize].1;
        g.current = value;
        g.peak = g.peak.max(value);
    }

    /// Adjusts a gauge by a signed delta, tracking the peak.
    #[inline]
    pub fn gauge_add(&mut self, id: GaugeId, delta: i64) {
        let g = &mut self.gauges[id.0 as usize].1;
        g.current += delta;
        g.peak = g.peak.max(g.current);
    }

    /// Current gauge value.
    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize].1.current
    }

    /// Highest value the gauge has reached.
    #[inline]
    pub fn gauge_peak(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize].1.peak
    }

    /// Records one latency sample.
    #[inline]
    pub fn record_latency(&mut self, id: HistogramId, latency: Dur) {
        self.histograms[id.0 as usize].1.record(latency);
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &LatencyHistogram {
        &self.histograms[id.0 as usize].1
    }

    /// Replaces a hub histogram with a copy of a device-owned one —
    /// idempotent publication for `Device::publish_metrics` (re-recording
    /// the samples instead would double-count them on the next snapshot).
    pub fn histogram_sync(&mut self, id: HistogramId, source: &LatencyHistogram) {
        self.histograms[id.0 as usize].1 = source.clone();
    }

    /// Records bytes moved at a simulated instant.
    #[inline]
    pub fn record_bytes(&mut self, id: MeterId, at: SimTime, bytes: u64) {
        self.meters[id.0 as usize].1.record(at, bytes);
    }

    /// Read access to a bandwidth meter.
    pub fn meter_ref(&self, id: MeterId) -> &BandwidthMeter {
        &self.meters[id.0 as usize].1
    }

    /// Replaces a hub meter with a copy of a device-owned one (idempotent
    /// publication, see [`MetricsHub::histogram_sync`]).
    pub fn meter_sync(&mut self, id: MeterId, source: BandwidthMeter) {
        self.meters[id.0 as usize].1 = source;
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up a counter's value by name (for registers/tests).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.index.get(name) {
            Some(Slot::Counter(i)) => Some(self.counters[*i as usize].1),
            _ => None,
        }
    }

    /// Iterates every registered gauge as `(name, current, peak)` in
    /// registration order. This is the [`crate::sampler::Sampler`]'s read
    /// path: it captures all gauge levels at one simulated instant without
    /// paying for a full name-sorted [`MetricsHub::snapshot`].
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&str, i64, i64)> {
        self.gauges
            .iter()
            .map(|(name, g)| (name.as_str(), g.current, g.peak))
    }

    /// Takes a deterministic point-in-time snapshot, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<MetricEntry> = Vec::with_capacity(self.index.len());
        for (name, value) in &self.counters {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Counter(*value),
            });
        }
        for (name, g) in &self.gauges {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Gauge {
                    current: g.current,
                    peak: g.peak,
                },
            });
        }
        for (name, h) in &self.histograms {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Histogram {
                    count: h.count(),
                    mean_ns: h.mean_ns(),
                    p50_ns: h.percentile_ns(0.50),
                    p99_ns: h.percentile_ns(0.99),
                    max_ns: h.stats().max().unwrap_or(0.0),
                },
            });
        }
        for (name, m) in &self.meters {
            entries.push(MetricEntry {
                name: name.clone(),
                value: MetricValue::Bandwidth {
                    bytes: m.bytes(),
                    bytes_per_sec: m.throughput(),
                },
            });
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Hierarchical dot name, e.g. `link.0.fwd.credit_stall_ns`.
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// Captured value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous level plus its high-water mark.
    Gauge {
        /// Value at snapshot time.
        current: i64,
        /// Highest value observed.
        peak: i64,
    },
    /// Latency distribution summary.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Mean latency in nanoseconds.
        mean_ns: f64,
        /// Median bucket upper bound in nanoseconds.
        p50_ns: f64,
        /// 99th-percentile bucket upper bound in nanoseconds.
        p99_ns: f64,
        /// Largest sample in nanoseconds.
        max_ns: f64,
    },
    /// Byte volume and observed throughput.
    Bandwidth {
        /// Total bytes recorded.
        bytes: u64,
        /// Throughput over the observed window, bytes/second.
        bytes_per_sec: f64,
    },
}

/// Deterministic, name-sorted capture of every metric in a hub.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// Counter value by name, when the metric is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes the snapshot as a JSON object keyed by metric name.
    /// Byte-identical across runs that recorded identical values.
    pub fn to_json(&self) -> String {
        let mut root = JsonValue::object();
        for entry in &self.entries {
            let mut v = JsonValue::object();
            match &entry.value {
                MetricValue::Counter(c) => {
                    v.push("type", JsonValue::from("counter"));
                    v.push("value", JsonValue::from(*c));
                }
                MetricValue::Gauge { current, peak } => {
                    v.push("type", JsonValue::from("gauge"));
                    v.push("current", JsonValue::from(*current));
                    v.push("peak", JsonValue::from(*peak));
                }
                MetricValue::Histogram {
                    count,
                    mean_ns,
                    p50_ns,
                    p99_ns,
                    max_ns,
                } => {
                    v.push("type", JsonValue::from("histogram"));
                    v.push("count", JsonValue::from(*count));
                    v.push("mean_ns", JsonValue::from(*mean_ns));
                    v.push("p50_ns", JsonValue::from(*p50_ns));
                    v.push("p99_ns", JsonValue::from(*p99_ns));
                    v.push("max_ns", JsonValue::from(*max_ns));
                }
                MetricValue::Bandwidth {
                    bytes,
                    bytes_per_sec,
                } => {
                    v.push("type", JsonValue::from("bandwidth"));
                    v.push("bytes", JsonValue::from(*bytes));
                    v.push("bytes_per_sec", JsonValue::from(*bytes_per_sec));
                }
            }
            root.push(entry.name.clone(), v);
        }
        root.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_snapshot() {
        let mut hub = MetricsHub::new();
        let c = hub.counter("link.0.fwd.packets");
        let g = hub.gauge("link.0.fwd.queue_depth");
        let h = hub.histogram("dma.fetch_ns");
        let m = hub.meter("link.0.fwd.bytes");
        hub.inc(c);
        hub.add(c, 2);
        hub.gauge_add(g, 3);
        hub.gauge_add(g, -2);
        hub.record_latency(h, Dur::from_ns(100));
        hub.record_bytes(m, SimTime::ZERO, 500);
        hub.record_bytes(m, SimTime::from_ps(1_000_000), 500);

        assert_eq!(hub.counter_value(c), 3);
        assert_eq!(hub.gauge_value(g), 1);
        assert_eq!(hub.gauge_peak(g), 3);
        assert_eq!(hub.len(), 4);

        let snap = hub.snapshot();
        assert_eq!(snap.counter("link.0.fwd.packets"), Some(3));
        assert_eq!(
            snap.get("link.0.fwd.queue_depth"),
            Some(&MetricValue::Gauge {
                current: 1,
                peak: 3
            })
        );
        match snap.get("link.0.fwd.bytes") {
            Some(MetricValue::Bandwidth {
                bytes,
                bytes_per_sec,
            }) => {
                assert_eq!(*bytes, 1000);
                assert!((bytes_per_sec - 1e9).abs() < 1.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sync_publication_is_idempotent() {
        // Devices mirror their internal collectors into the hub on every
        // snapshot; repeating the publication must not change the values.
        let mut hub = MetricsHub::new();
        let c = hub.counter("dev.relayed");
        let h = hub.histogram("dev.window_ns");
        let m = hub.meter("dev.bytes");
        let mut dev_hist = LatencyHistogram::new();
        dev_hist.record(Dur::from_ns(200));
        let mut dev_meter = BandwidthMeter::new();
        dev_meter.record(SimTime::ZERO, 100);
        for _ in 0..3 {
            hub.counter_sync(c, 42);
            hub.histogram_sync(h, &dev_hist);
            hub.meter_sync(m, dev_meter);
        }
        assert_eq!(hub.counter_value(c), 42);
        assert_eq!(hub.histogram_ref(h).count(), 1);
        assert_eq!(hub.meter_ref(m).bytes(), 100);
        // A stale total never winds a counter backwards.
        hub.counter_sync(c, 41);
        assert_eq!(hub.counter_value(c), 42);
    }

    #[test]
    fn reregistration_returns_same_handle() {
        let mut hub = MetricsHub::new();
        let a = hub.counter("x");
        let b = hub.counter("x");
        assert_eq!(a, b);
        assert_eq!(hub.len(), 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflict_panics() {
        let mut hub = MetricsHub::new();
        hub.counter("x");
        hub.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_json_deterministic() {
        let build = || {
            let mut hub = MetricsHub::new();
            // Register in non-alphabetical order.
            let b = hub.counter("b.count");
            let a = hub.counter("a.count");
            hub.inc(b);
            hub.add(a, 7);
            hub
        };
        let s1 = build().snapshot();
        let s2 = build().snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.to_json(), s2.to_json());
        let names: Vec<_> = s1.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.count", "b.count"]);
        // And the JSON parses back.
        let parsed = crate::json::JsonValue::parse(&s1.to_json()).expect("valid json");
        assert_eq!(
            parsed
                .get("a.count")
                .and_then(|v| v.get("value"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
    }
}
