//! Deterministic flight recorder: a bounded ring of structured dispatch
//! events, serialized as schema-versioned JSONL (`tca-flight/v1`).
//!
//! The recorder is a pure data sink, exactly like [`crate::MetricsHub`] and
//! [`crate::SpanStore`]: recording never schedules events, never reads a
//! wall clock, and never branches the simulation, so a recorded run and an
//! unrecorded run execute identically and two recorded runs of the same
//! seeded workload produce byte-identical logs. That property is what makes
//! the log *diffable*: `tca-verify`'s divergence engine aligns two logs by
//! sequence number and the first mismatching line is, by construction, the
//! first point where the two runs actually differed.
//!
//! ## Ring buffer and spill
//!
//! Capture is bounded: the most recent `capacity` events live in a ring
//! (`VecDeque`), so an arbitrarily long run records in O(capacity) memory —
//! the black-box-recorder mode. With spill enabled, an event evicted from
//! the ring is serialized to its JSONL line first and the line is retained,
//! so the full log survives at the cost of one `String` per event — the
//! record-everything mode used by `tca-bench --flight-dir`. Either way the
//! emitted log is identical for the events it covers; the header states how
//! many events were recorded and how many were dropped unserialized.
//!
//! ## Log format
//!
//! One JSON object per line. The first line is the header:
//!
//! ```text
//! {"schema":"tca-flight/v1","events":1234,"dropped":0}
//! ```
//!
//! then one line per event, in dispatch order:
//!
//! ```text
//! {"seq":7,"t_ps":170000,"kind":"deliver","node":2,"port":0,"span":3,"digest":"91ab...","label":"MemWr[0x1000 +256B]"}
//! ```
//!
//! `digest` is a 16-hex-digit FNV-1a content hash (see [`Fnv64`]) kept as a
//! string because JSON numbers cannot carry 64 bits exactly. Writers may
//! append the run's span records (`{"id":..,"root":..,...}`, the
//! [`crate::SpanStore::jsonl`] lines) after the events so analysis tools
//! can bisect span trees from the log alone.

use crate::json::write_escaped;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema tag of the flight-log header line.
pub const FLIGHT_SCHEMA: &str = "tca-flight/v1";

/// Streaming 64-bit FNV-1a hasher. Deterministic across platforms and
/// allocation-free, which is why the flight recorder uses it (and not
/// `DefaultHasher`, whose output is unspecified) for packet content
/// digests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        self
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.update(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One recorded dispatch: what the event loop executed, when, and on whose
/// behalf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// 1-based dispatch sequence number (the alignment key for diffing).
    pub seq: u64,
    /// Simulated instant the event executed.
    pub at: SimTime,
    /// Stable kind name (`"deliver"`, `"timer"`, `"credit_return"`).
    pub kind: &'static str,
    /// Device the event acted on (delivery destination, timer owner, or
    /// credit-returning link endpoint).
    pub node: u32,
    /// Device-local port involved, when the event is port-scoped.
    pub port: Option<u8>,
    /// Root span id of the transfer the event serves, when span tracing
    /// attached one.
    pub span: Option<u64>,
    /// FNV-1a content digest (TLP payload identity, timer tag, or credit
    /// tuple) — catches payload corruption even when timing agrees.
    pub digest: u64,
    /// Human-readable description (`MemWr[0x1000 +256B]`, `relay_forward
    /// tag=0x600…`).
    pub label: String,
}

impl FlightEvent {
    /// The event's JSONL line (no trailing newline), in the fixed key order
    /// the schema promises.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(96 + self.label.len());
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ps\":{},\"kind\":\"{}\",\"node\":{}",
            self.seq,
            self.at.as_ps(),
            self.kind,
            self.node
        );
        match self.port {
            Some(p) => {
                let _ = write!(out, ",\"port\":{p}");
            }
            None => out.push_str(",\"port\":null"),
        }
        match self.span {
            Some(s) => {
                let _ = write!(out, ",\"span\":{s}");
            }
            None => out.push_str(",\"span\":null"),
        }
        let _ = write!(out, ",\"digest\":\"{:016x}\",\"label\":", self.digest);
        write_escaped(&self.label, &mut out);
        out.push('}');
        out
    }
}

/// The recorder: a bounded ring of [`FlightEvent`]s with optional spill of
/// evicted events to pre-serialized JSONL lines. See the module docs for
/// the determinism contract and log format.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    /// JSONL lines of events evicted from the ring; `None` disables spill
    /// and evictions only bump `dropped`.
    spill: Option<Vec<String>>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A ring-only recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight ring capacity must be non-zero");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            spill: None,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// A recorder that spills evicted events to JSONL so the full log is
    /// retained regardless of ring size.
    pub fn with_spill(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            spill: Some(Vec::new()),
            ..FlightRecorder::new(capacity)
        }
    }

    /// Appends one event, assigning it the next sequence number. Evicts the
    /// oldest ring entry first when full (spilling or dropping it).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        at: SimTime,
        kind: &'static str,
        node: u32,
        port: Option<u8>,
        span: Option<u64>,
        digest: u64,
        label: String,
    ) {
        if self.ring.len() == self.capacity {
            let oldest = self.ring.pop_front().expect("non-empty full ring");
            match &mut self.spill {
                Some(lines) => lines.push(oldest.jsonl()),
                None => self.dropped += 1,
            }
        }
        self.next_seq += 1;
        self.ring.push_back(FlightEvent {
            seq: self.next_seq,
            at,
            kind,
            node,
            port,
            span,
            digest,
            label,
        });
    }

    /// Total events recorded since construction.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted without spill (absent from the emitted log).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded or everything was evicted.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// The header line (no trailing newline).
    pub fn header(&self) -> String {
        format!(
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"events\":{},\"dropped\":{}}}",
            self.next_seq, self.dropped
        )
    }

    /// The full log as JSONL: header, spilled lines, then the ring —
    /// newline-terminated, byte-deterministic.
    pub fn jsonl(&self) -> String {
        let mut out = self.header();
        out.push('\n');
        if let Some(lines) = &self.spill {
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        for ev in &self.ring {
            out.push_str(&ev.jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn ev(r: &mut FlightRecorder, n: u32) {
        r.record(
            SimTime::from_ps(u64::from(n) * 100),
            "deliver",
            n,
            Some(0),
            Some(1),
            u64::from(n) * 7,
            format!("ev{n}"),
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::new().update(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::new().update(b"foobar").finish(), 0x85944171f73967e8);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = FlightRecorder::new(2);
        for n in 0..5 {
            ev(&mut r, n);
        }
        assert_eq!((r.recorded(), r.dropped(), r.len()), (5, 3, 2));
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert!(r.header().contains("\"events\":5,\"dropped\":3"));
    }

    #[test]
    fn spill_retains_full_log_in_order() {
        let mut r = FlightRecorder::with_spill(2);
        for n in 0..5 {
            ev(&mut r, n);
        }
        assert_eq!(r.dropped(), 0);
        let log = r.jsonl();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 6); // header + 5 events
        for (i, line) in lines.iter().enumerate().skip(1) {
            let v = JsonValue::parse(line).expect("valid JSON line");
            assert_eq!(v.get("seq").and_then(JsonValue::as_u64), Some(i as u64));
        }
    }

    #[test]
    fn jsonl_lines_parse_and_round_trip_fields() {
        let mut r = FlightRecorder::new(8);
        r.record(
            SimTime::from_ps(42),
            "timer",
            3,
            None,
            None,
            0xdead_beef,
            "odd \"label\"\twith\ncontrol \u{1} bytes".to_owned(),
        );
        let line = r.events().next().expect("one event").jsonl();
        let v = JsonValue::parse(&line).expect("valid JSON");
        assert_eq!(v.get("t_ps").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("timer"));
        assert!(matches!(v.get("port"), Some(JsonValue::Null)));
        assert!(matches!(v.get("span"), Some(JsonValue::Null)));
        assert_eq!(
            v.get("digest").and_then(JsonValue::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            v.get("label").and_then(JsonValue::as_str),
            Some("odd \"label\"\twith\ncontrol \u{1} bytes")
        );
    }

    #[test]
    fn identical_inputs_serialize_byte_identically() {
        let build = || {
            let mut r = FlightRecorder::with_spill(3);
            for n in 0..7 {
                ev(&mut r, n);
            }
            r.jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
