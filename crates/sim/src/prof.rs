//! Host-side engine profiling: wall-clock-free counters plus (behind the
//! `host-prof` feature) process-wide allocation accounting.
//!
//! This is the *counter* half of `tca-prof`. Everything in this module is
//! observationally neutral to the simulation: counters are plain integers
//! bumped on the engine's existing control paths, they never schedule
//! events, never consult wall-clock time, and never branch on anything the
//! event stream could see. The *timer* half (wall-clock phase spans,
//! folded-stack rendering, `BENCH_engine.json`) lives in `tca-bench`,
//! because the determinism lint in `scripts/ci.sh` bans wall-clock use in
//! the simulation crates — see DESIGN.md's counters-in-sim /
//! timers-in-bench split.
//!
//! `tests/determinism.rs` proves the neutrality claim: the byte-identity
//! tests for the event stream, the health report, and `BENCH_fabric.json`
//! run with these counters compiled in (and, in the `host-prof` builds,
//! with the counting allocator installed) and still reproduce the same
//! paper-anchored absolute values as the uninstrumented binaries.

use crate::json::JsonValue;

/// Pure host-side counters of one [`EventQueue`](crate::EventQueue)'s
/// activity. Every field is a monotone `u64` except `peak_pending`,
/// which is a high-water mark; none of them feed back into scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfCounters {
    /// Events scheduled (`schedule_at` / `schedule_in`).
    pub pushes: u64,
    /// Events popped and executed.
    pub pops: u64,
    /// Successful cancellations (entry unlinked eagerly, O(1)).
    pub cancels: u64,
    /// Entries re-filed one wheel level down (or admitted from the
    /// overflow tier) as the wheel base advanced past their bucket.
    pub cascades: u64,
    /// Maximum number of simultaneously pending events observed.
    pub peak_pending: u64,
}

impl ProfCounters {
    /// Counter increments since `earlier` (a snapshot of the same queue).
    /// The monotone counters subtract; `peak_pending` keeps the later
    /// absolute high-water mark, since a peak has no meaningful delta.
    pub fn since(&self, earlier: &ProfCounters) -> ProfCounters {
        ProfCounters {
            pushes: self.pushes - earlier.pushes,
            pops: self.pops - earlier.pops,
            cancels: self.cancels - earlier.cancels,
            cascades: self.cascades - earlier.cascades,
            peak_pending: self.peak_pending,
        }
    }

    /// Serializes the counters as a stable-key-order JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.push("pushes", JsonValue::from(self.pushes));
        o.push("pops", JsonValue::from(self.pops));
        o.push("cancels", JsonValue::from(self.cancels));
        o.push("cascades", JsonValue::from(self.cascades));
        o.push("peak_pending", JsonValue::from(self.peak_pending));
        o
    }
}

/// Snapshot of the process-wide allocation counters. All zeros unless the
/// `host-prof` feature is enabled *and* a binary has installed
/// [`CountingAllocator`] as its `#[global_allocator]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Heap allocations served.
    pub allocs: u64,
    /// Heap deallocations served.
    pub frees: u64,
    /// Total bytes handed out across all allocations.
    pub bytes_allocated: u64,
    /// Bytes currently live (allocated minus freed).
    pub current_bytes: u64,
    /// High-water mark of `current_bytes`.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Allocation activity since `earlier`. Monotone counters subtract;
    /// `current_bytes` and `peak_bytes` keep the later absolute values.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            bytes_allocated: self.bytes_allocated - earlier.bytes_allocated,
            current_bytes: self.current_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(feature = "host-prof")]
mod hostalloc {
    use super::AllocSnapshot;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static FREES: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static CURRENT: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    pub(super) fn record_alloc(size: u64) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(size, Relaxed);
        let now = CURRENT.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(now, Relaxed);
    }

    pub(super) fn record_dealloc(size: u64) {
        FREES.fetch_add(1, Relaxed);
        // Saturating: a binary may install the allocator after some
        // allocations already happened, so frees can outrun allocs.
        let _ = CURRENT.fetch_update(Relaxed, Relaxed, |c| Some(c.saturating_sub(size)));
    }

    pub(super) fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Relaxed),
            frees: FREES.load(Relaxed),
            bytes_allocated: BYTES.load(Relaxed),
            current_bytes: CURRENT.load(Relaxed),
            peak_bytes: PEAK.load(Relaxed),
        }
    }

    /// System-allocator passthrough that counts every request. The only
    /// `unsafe` in the workspace: each method forwards verbatim to
    /// [`std::alloc::System`] and touches nothing but relaxed atomics, so
    /// it upholds exactly the contract `System` already satisfies.
    #[allow(unsafe_code)]
    mod allocator {
        use std::alloc::{GlobalAlloc, Layout, System};

        /// See [`crate::prof::CountingAllocator`].
        pub struct CountingAllocator;

        unsafe impl GlobalAlloc for CountingAllocator {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                super::record_alloc(layout.size() as u64);
                System.alloc(layout)
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                super::record_dealloc(layout.size() as u64);
                System.dealloc(ptr, layout)
            }

            unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
                super::record_alloc(layout.size() as u64);
                System.alloc_zeroed(layout)
            }

            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                super::record_dealloc(layout.size() as u64);
                super::record_alloc(new_size as u64);
                System.realloc(ptr, layout, new_size)
            }
        }
    }

    pub use allocator::CountingAllocator;
}

/// Counting system-allocator wrapper (only with the `host-prof` feature).
/// Binaries opt in with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: tca_sim::prof::CountingAllocator = tca_sim::prof::CountingAllocator;
/// ```
///
/// Counting is two relaxed atomic adds per call — uniform overhead that
/// cannot observe or perturb simulated time.
#[cfg(feature = "host-prof")]
pub use hostalloc::CountingAllocator;

/// Current process-wide allocation counters. Returns
/// [`AllocSnapshot::default`] (all zeros) when the `host-prof` feature is
/// off or no binary installed [`CountingAllocator`].
pub fn alloc_snapshot() -> AllocSnapshot {
    #[cfg(feature = "host-prof")]
    {
        hostalloc::snapshot()
    }
    #[cfg(not(feature = "host-prof"))]
    {
        AllocSnapshot::default()
    }
}

/// True when this build can account allocations (the `host-prof` feature
/// is enabled). Whether counts are non-zero still depends on the running
/// binary having installed [`CountingAllocator`].
pub fn alloc_tracking_compiled() -> bool {
    cfg!(feature = "host-prof")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prof_counters_delta_subtracts_monotone_fields() {
        let earlier = ProfCounters {
            pushes: 10,
            pops: 8,
            cancels: 1,
            cascades: 1,
            peak_pending: 5,
        };
        let later = ProfCounters {
            pushes: 25,
            pops: 20,
            cancels: 3,
            cascades: 2,
            peak_pending: 9,
        };
        let d = later.since(&earlier);
        assert_eq!(d.pushes, 15);
        assert_eq!(d.pops, 12);
        assert_eq!(d.cancels, 2);
        assert_eq!(d.cascades, 1);
        assert_eq!(d.peak_pending, 9, "peak carries the absolute value");
    }

    #[test]
    fn prof_counters_json_is_stable() {
        let c = ProfCounters {
            pushes: 2,
            pops: 1,
            cancels: 0,
            cascades: 0,
            peak_pending: 2,
        };
        assert_eq!(
            c.to_json().to_json(),
            r#"{"pushes":2,"pops":1,"cancels":0,"cascades":0,"peak_pending":2}"#
        );
    }

    #[test]
    fn alloc_snapshot_delta() {
        let a = AllocSnapshot {
            allocs: 100,
            frees: 90,
            bytes_allocated: 4096,
            current_bytes: 512,
            peak_bytes: 2048,
        };
        let b = AllocSnapshot {
            allocs: 150,
            frees: 140,
            bytes_allocated: 8192,
            current_bytes: 768,
            peak_bytes: 4096,
        };
        let d = b.since(&a);
        assert_eq!(d.allocs, 50);
        assert_eq!(d.frees, 50);
        assert_eq!(d.bytes_allocated, 4096);
        assert_eq!(d.current_bytes, 768);
        assert_eq!(d.peak_bytes, 4096);
    }
}
