//! Deterministic random number generation.
//!
//! The simulation must replay bit-identically from a seed, so we ship a
//! small, self-contained xoshiro256** generator (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64. The `rand` crate is used
//! only by benches for workload generation; device models use [`SimRng`].

/// SplitMix64 step, used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-zero internal state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (no modulo bias for the bound sizes we use).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // 128-bit multiply-high; bias is < 2^-64 and irrelevant for models.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fills `buf` with random bytes (used to build test payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// Derives an independent child generator; used to give each device its
    /// own stream without coupling their consumption patterns.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::seed_from_u64(0);
        // The state must not be all zeros (xoshiro would then be stuck).
        assert_ne!(r.next_u64() | r.next_u64() | r.next_u64(), 0);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SimRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 255, 4096] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SimRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }

    #[test]
    fn fill_bytes_all_lengths() {
        let mut r = SimRng::seed_from_u64(13);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len={len}");
            }
        }
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::seed_from_u64(99);
        let mut child = parent.fork();
        let c1 = child.next_u64();
        // Re-derive: same parent state sequence gives the same child.
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }
}
