//! # tca-sim — deterministic discrete-event simulation engine
//!
//! Foundation layer of the `tca-rs` workspace: an integer-picosecond clock,
//! a deterministic event queue with FIFO tie-break, a replayable PRNG, and
//! the measurement collectors used by every device model.
//!
//! Nothing in this crate knows about PCIe or PEACH2; the protocol layers
//! (`tca-pcie`, `tca-peach2`, …) define event payloads and dispatch loops
//! on top of [`EventQueue`].
//!
//! ## Determinism contract
//!
//! * All state advances only through popped events.
//! * Same-instant events execute in scheduling order.
//! * All randomness flows from [`SimRng`] seeds.
//!
//! Given the same seed and the same sequence of API calls, a simulation
//! replays bit-identically — the property-based tests across the workspace
//! rely on this.
//!
//! ```
//! use tca_sim::{Dur, EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_ps(500), "b");
//! q.schedule_at(SimTime::from_ps(100), "a");
//! assert_eq!(q.pop(), Some((SimTime::from_ps(100), "a")));
//! q.schedule_in(Dur::from_ns(1), "c"); // relative to the new now (100 ps)
//! assert_eq!(q.pop(), Some((SimTime::from_ps(500), "b")));
//! assert_eq!(q.pop(), Some((SimTime::from_ps(1_100), "c")));
//! ```

// `unsafe` is forbidden except for the one feature-gated module that
// implements the counting `#[global_allocator]` passthrough (`prof`);
// with `host-prof` off this crate still compiles under `forbid`.
#![cfg_attr(not(feature = "host-prof"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod params;
pub mod prof;
pub mod rng;
pub mod sampler;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{EventId, EventQueue};
pub use flight::{FlightEvent, FlightRecorder, Fnv64, FLIGHT_SCHEMA};
pub use json::{write_escaped, JsonValue};
pub use metrics::{
    CounterId, GaugeId, HistogramId, MeterId, MetricValue, MetricsHub, MetricsSnapshot,
};
pub use params::{
    fingerprint_hex, fingerprint_pairs, nest_id, unnest_id, ParamDesc, ParamSet, ParamUnit,
    Parameterized,
};
pub use prof::{alloc_snapshot, AllocSnapshot, ProfCounters};
pub use rng::SimRng;
pub use sampler::{GaugeSeries, Sampler, StallReport, Watchdog};
pub use span::{SpanId, SpanStore, TraceCtx, WriteRec};
pub use stats::{fmt_gbps, BandwidthMeter, Counter, HdrHistogram, LatencyHistogram, OnlineStats};
pub use time::{Dur, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceLevel, Tracer};
