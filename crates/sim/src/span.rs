//! Causal span tracing with exact simulated-time attribution.
//!
//! The [`Tracer`](crate::trace::Tracer) answers "what happened on this
//! link"; this module answers "where did *this one transfer* spend its
//! nanoseconds". A [`TraceCtx`] is allocated at the origin of a transfer
//! (a CPU PIO store, a DMA doorbell, an MPI message) and carried by every
//! packet the transfer generates. Each layer the packet crosses records a
//! closed *segment* — credit stall, wire serialization, router forward
//! delay, descriptor fetch, interrupt entry — against the transfer's root
//! span, and the finished transfer yields a parent/child span tree whose
//! intervals decompose the end-to-end latency exactly.
//!
//! ## Determinism contract
//!
//! The store is a pure data sink, exactly like
//! [`MetricsHub`](crate::metrics::MetricsHub): it never schedules events,
//! never reads a wall clock, and never draws randomness. [`SpanId`]s come
//! from an incrementing counter, so two identical runs produce
//! byte-identical span trees, and enabling the store cannot shift a single
//! simulated timestamp (`tests/determinism.rs` proves both).
//!
//! ## Exact attribution
//!
//! [`SpanStore::attribution`] sweeps the root span's time window over the
//! recorded segment boundaries and charges every elementary interval to
//! the *innermost* covering segment (latest start wins). Uncovered time is
//! charged to `"other"`. Because the sweep partitions `[start, end]` with
//! integer-picosecond arithmetic, the per-stage durations always sum to
//! the measured end-to-end latency *exactly* — no rounding, no double
//! counting of nested intervals.

use crate::json::JsonValue;
use crate::time::{Dur, SimTime};

/// Identifier of one span. Allocated from a per-store counter starting at
/// 1, so ids are dense, deterministic, and stable across identical runs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(u64);

impl SpanId {
    /// Raw 1-based counter value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Causal context carried by an in-flight packet: which transfer tree it
/// belongs to (`root`) and which span should parent anything recorded on
/// its behalf (`parent`). `Copy` so it rides inside TLPs for free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceCtx {
    /// Root span of the transfer this packet serves.
    pub root: SpanId,
    /// Current parent span for segments recorded downstream.
    pub parent: SpanId,
}

/// One recorded span: a named interval attributed to a device, linked to
/// its parent within a transfer tree.
#[derive(Clone, Debug)]
struct SpanRec {
    root: SpanId,
    parent: Option<SpanId>,
    name: String,
    device: Option<u32>,
    start: SimTime,
    end: Option<SimTime>,
}

/// One remote write observed committing into a memory endpoint, recorded
/// for post-run hazard analysis (RDMA-put-only fabrics synchronize with an
/// ordered flag write; `tca-verify` replays this log to find conflicting
/// writes that raced). `issued` is the origin instant of the transfer that
/// carried the write (its root span start) and `origin` the device that
/// opened the root, so two writes can be ordered by program order at the
/// source and by commit order at the destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteRec {
    /// Root span of the transfer the write belongs to.
    pub root: SpanId,
    /// Device that originated the transfer (the root span's device).
    pub origin: Option<u32>,
    /// Device the write committed into.
    pub dest: Option<u32>,
    /// Instant the transfer was issued at the origin (root span start).
    pub issued: SimTime,
    /// Instant the bytes became visible at the destination.
    pub commit: SimTime,
    /// Destination address of the write.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Collector of transfer span trees. Owned by the fabric next to the
/// tracer and metrics hub; disabled (and free) by default.
#[derive(Default)]
pub struct SpanStore {
    enabled: bool,
    spans: Vec<SpanRec>,
    writes: Vec<WriteRec>,
}

impl SpanStore {
    /// New, disabled store.
    pub fn new() -> Self {
        SpanStore::default()
    }

    /// Turns recording on or off. Packets launched while disabled carry no
    /// context, so flipping this cannot change simulated behavior.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the store is recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops all recorded spans and writes (the enabled flag is kept).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.writes.clear();
    }

    /// Records a write of `len` bytes at `addr` committing into `dest` at
    /// `commit`, attributed to the transfer `ctx` belongs to. Pure data
    /// collection, like every other recording on this store.
    pub fn record_write(
        &mut self,
        ctx: TraceCtx,
        addr: u64,
        len: u64,
        commit: SimTime,
        dest: Option<u32>,
    ) {
        if !self.enabled {
            return;
        }
        let rootrec = self.get(ctx.root);
        self.writes.push(WriteRec {
            root: ctx.root,
            origin: rootrec.device,
            dest,
            issued: rootrec.start,
            commit,
            addr,
            len,
        });
    }

    /// The committed-write log, in commit (i.e. recording) order.
    pub fn writes(&self) -> &[WriteRec] {
        &self.writes
    }

    fn alloc(&mut self, rec: SpanRec) -> SpanId {
        self.spans.push(rec);
        SpanId(self.spans.len() as u64)
    }

    fn get(&self, id: SpanId) -> &SpanRec {
        &self.spans[(id.0 - 1) as usize]
    }

    fn get_mut(&mut self, id: SpanId) -> &mut SpanRec {
        &mut self.spans[(id.0 - 1) as usize]
    }

    /// Opens a new transfer tree rooted at `name`, returning the context
    /// to attach at the origin — or `None` while disabled (the no-cost
    /// path: callers skip all further recording).
    pub fn start_root(&mut self, name: &str, at: SimTime, device: Option<u32>) -> Option<TraceCtx> {
        if !self.enabled {
            return None;
        }
        let id = self.alloc(SpanRec {
            root: SpanId(self.spans.len() as u64 + 1),
            parent: None,
            name: name.to_string(),
            device,
            start: at,
            end: None,
        });
        Some(TraceCtx {
            root: id,
            parent: id,
        })
    }

    /// Opens a child span under `ctx` and returns the shifted context
    /// (same root, new parent) for downstream propagation.
    pub fn child(
        &mut self,
        ctx: TraceCtx,
        name: &str,
        at: SimTime,
        device: Option<u32>,
    ) -> TraceCtx {
        if !self.enabled {
            return ctx;
        }
        let id = self.alloc(SpanRec {
            root: ctx.root,
            parent: Some(ctx.parent),
            name: name.to_string(),
            device,
            start: at,
            end: None,
        });
        TraceCtx {
            root: ctx.root,
            parent: id,
        }
    }

    /// Records a closed interval `[start, end]` as a child of `ctx`.
    /// `end` may lie in the simulated future (a wire reservation knows its
    /// arrival instant up front); that is pure data, not an event.
    pub fn segment(
        &mut self,
        ctx: TraceCtx,
        name: &str,
        start: SimTime,
        end: SimTime,
        device: Option<u32>,
    ) {
        if !self.enabled {
            return;
        }
        self.alloc(SpanRec {
            root: ctx.root,
            parent: Some(ctx.parent),
            name: name.to_string(),
            device,
            start,
            end: Some(end),
        });
    }

    /// Closes the span `ctx.parent` at `at` (keeps the later instant if it
    /// was already closed — multi-packet transfers commit more than once).
    pub fn end(&mut self, ctx: TraceCtx, at: SimTime) {
        if !self.enabled {
            return;
        }
        let rec = self.get_mut(ctx.parent);
        rec.end = Some(rec.end.map_or(at, |e| e.max(at)));
    }

    /// Closes the *root* span of `ctx` at `at` — the transfer's commit
    /// instant (keeps the later instant across multiple commits).
    pub fn end_root(&mut self, ctx: TraceCtx, at: SimTime) {
        if !self.enabled {
            return;
        }
        let rec = self.get_mut(ctx.root);
        rec.end = Some(rec.end.map_or(at, |e| e.max(at)));
    }

    /// Root spans in allocation (i.e. origin) order: `(id, name, start,
    /// end)`. An open root (transfer never committed) reports `end = None`.
    pub fn roots(&self) -> Vec<(SpanId, &str, SimTime, Option<SimTime>)> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(i, s)| (SpanId(i as u64 + 1), s.name.as_str(), s.start, s.end))
            .collect()
    }

    /// End-to-end duration of a committed root span.
    pub fn root_elapsed(&self, root: SpanId) -> Option<Dur> {
        let rec = self.get(root);
        rec.end.map(|e| e.since(rec.start))
    }

    /// Exact per-stage latency attribution for one transfer tree.
    ///
    /// Sweeps `[root.start, root.end]` over all closed segments of the
    /// tree; each elementary interval is charged to the innermost covering
    /// segment (latest start wins; ties broken by latest allocation),
    /// uncovered time to `"other"`. Stages are returned in order of first
    /// appearance on the timeline, and their durations sum to the root
    /// duration exactly.
    pub fn attribution(&self, root: SpanId) -> Vec<(String, Dur)> {
        let rootrec = self.get(root);
        let t0 = rootrec.start;
        let t1 = match rootrec.end {
            Some(e) => e,
            None => return Vec::new(),
        };
        // Closed, clamped, non-empty segments of this tree (the root
        // itself excluded — it is the window being decomposed).
        let mut segs: Vec<(SimTime, SimTime, usize)> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.root != root || SpanId(i as u64 + 1) == root {
                continue;
            }
            if let Some(end) = s.end {
                let a = s.start.max(t0);
                let b = end.min(t1);
                if b > a {
                    segs.push((a, b, i));
                }
            }
        }
        let mut pts: Vec<SimTime> = vec![t0, t1];
        for &(a, b, _) in &segs {
            pts.push(a);
            pts.push(b);
        }
        pts.sort();
        pts.dedup();
        let mut stages: Vec<(String, Dur)> = Vec::new();
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Innermost covering segment: latest start, then latest id.
            let owner = segs
                .iter()
                .filter(|&&(s, e, _)| s <= a && e >= b)
                .max_by_key(|&&(s, _, i)| (s, i))
                .map(|&(_, _, i)| self.spans[i].name.as_str())
                .unwrap_or("other");
            let d = b.since(a);
            match stages.iter_mut().find(|(n, _)| n == owner) {
                Some((_, acc)) => *acc += d,
                None => stages.push((owner.to_string(), d)),
            }
        }
        stages
    }

    /// Renders the span forest as an indented text tree (ns durations),
    /// deterministic across identical runs.
    pub fn tree_text(&self) -> String {
        let mut out = String::new();
        for (id, ..) in self.roots() {
            self.tree_node(&mut out, id, 0);
        }
        out
    }

    fn tree_node(&self, out: &mut String, id: SpanId, depth: usize) {
        let rec = self.get(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let dev = rec.device.map(|d| format!(" dev{d}")).unwrap_or_default();
        match rec.end {
            Some(end) => out.push_str(&format!(
                "{} [{} +{:.1}ns]{}\n",
                rec.name,
                rec.start,
                end.since(rec.start).as_ns_f64(),
                dev
            )),
            None => out.push_str(&format!("{} [{} ..open]{}\n", rec.name, rec.start, dev)),
        }
        for (i, s) in self.spans.iter().enumerate() {
            if s.parent == Some(id) {
                self.tree_node(out, SpanId(i as u64 + 1), depth + 1);
            }
        }
    }

    /// Serializes every span as a JSON array (deterministic field and
    /// element order): `{id, root, parent, name, device, start_ps,
    /// end_ps}`.
    pub fn to_json(&self) -> String {
        let mut arr = Vec::with_capacity(self.spans.len());
        for i in 0..self.spans.len() {
            arr.push(self.span_json(i));
        }
        JsonValue::Array(arr).to_json()
    }

    /// Serializes every span as one JSON object per line (same objects and
    /// order as [`SpanStore::to_json`], newline-terminated). Flight-log
    /// writers append these lines after the event records so the
    /// divergence engine can bisect span trees from the log alone.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for i in 0..self.spans.len() {
            out.push_str(&self.span_json(i).to_json());
            out.push('\n');
        }
        out
    }

    /// The JSON object of span index `i` (0-based; ids are 1-based).
    fn span_json(&self, i: usize) -> JsonValue {
        let s = &self.spans[i];
        let mut obj = JsonValue::object();
        obj.push("id", JsonValue::from(i as u64 + 1));
        obj.push("root", JsonValue::from(s.root.raw()));
        obj.push(
            "parent",
            s.parent
                .map_or(JsonValue::Null, |p| JsonValue::from(p.raw())),
        );
        obj.push("name", JsonValue::from(s.name.as_str()));
        obj.push(
            "device",
            s.device
                .map_or(JsonValue::Null, |d| JsonValue::from(u64::from(d))),
        );
        obj.push("start_ps", JsonValue::from(s.start.as_ps()));
        obj.push(
            "end_ps",
            s.end
                .map_or(JsonValue::Null, |e| JsonValue::from(e.as_ps())),
        );
        obj
    }

    /// Chrome trace-event JSON for the span forest: every closed span
    /// becomes a complete (`"X"`) event on its device's track, and every
    /// parent→child edge that crosses devices becomes a flow (`"s"`/`"f"`)
    /// pair, so Perfetto draws arrows following a transfer across nodes.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            let end = match s.end {
                Some(e) => e,
                None => continue,
            };
            let tid = u64::from(s.device.unwrap_or(0));
            let mut obj = JsonValue::object();
            obj.push("name", JsonValue::from(s.name.as_str()));
            obj.push("cat", JsonValue::from("span"));
            obj.push("ph", JsonValue::from("X"));
            obj.push("ts", JsonValue::from(s.start.as_us_f64()));
            obj.push(
                "dur",
                JsonValue::from(end.since(s.start).as_ps() as f64 / 1e6),
            );
            obj.push("pid", JsonValue::from(0u64));
            obj.push("tid", JsonValue::from(tid));
            let mut args = JsonValue::object();
            args.push("root", JsonValue::from(s.root.raw()));
            args.push("id", JsonValue::from(i as u64 + 1));
            obj.push("args", args);
            events.push(obj);
            // Cross-device causality arrow from the parent span.
            if let Some(p) = s.parent {
                let prec = self.get(p);
                if prec.device != s.device {
                    let ptid = u64::from(prec.device.unwrap_or(0));
                    let mut start = JsonValue::object();
                    start.push("name", JsonValue::from("causal"));
                    start.push("cat", JsonValue::from("span"));
                    start.push("ph", JsonValue::from("s"));
                    start.push("id", JsonValue::from(i as u64 + 1));
                    start.push("ts", JsonValue::from(prec.start.as_us_f64()));
                    start.push("pid", JsonValue::from(0u64));
                    start.push("tid", JsonValue::from(ptid));
                    events.push(start);
                    let mut fin = JsonValue::object();
                    fin.push("name", JsonValue::from("causal"));
                    fin.push("cat", JsonValue::from("span"));
                    fin.push("ph", JsonValue::from("f"));
                    fin.push("bp", JsonValue::from("e"));
                    fin.push("id", JsonValue::from(i as u64 + 1));
                    fin.push("ts", JsonValue::from(s.start.as_us_f64()));
                    fin.push("pid", JsonValue::from(0u64));
                    fin.push("tid", JsonValue::from(tid));
                    events.push(fin);
                }
            }
        }
        JsonValue::Array(events).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_store_records_nothing() {
        let mut s = SpanStore::new();
        assert!(s.start_root("pio", SimTime::ZERO, None).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn ids_are_dense_and_deterministic() {
        let mut s = SpanStore::new();
        s.set_enabled(true);
        let a = s.start_root("a", SimTime::ZERO, None).unwrap();
        let b = s.child(a, "b", SimTime::from_ps(10), Some(1));
        assert_eq!(a.root.raw(), 1);
        assert_eq!(b.parent.raw(), 2);
        assert_eq!(b.root, a.root);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn attribution_partitions_exactly() {
        let mut s = SpanStore::new();
        s.set_enabled(true);
        let root = s.start_root("xfer", SimTime::ZERO, None).unwrap();
        // Outer stage [0, 100) with an inner wire [20, 60): innermost wins.
        s.segment(root, "fetch", SimTime::ZERO, SimTime::from_ps(100), None);
        s.segment(
            root,
            "wire",
            SimTime::from_ps(20),
            SimTime::from_ps(60),
            None,
        );
        s.end_root(root, SimTime::from_ps(150));
        let attr = s.attribution(root.root);
        let total: Dur = attr.iter().map(|&(_, d)| d).fold(Dur::ZERO, |a, d| a + d);
        assert_eq!(total, Dur::from_ps(150), "stages must sum exactly");
        let get = |n: &str| {
            attr.iter()
                .find(|(name, _)| name == n)
                .map(|&(_, d)| d)
                .unwrap()
        };
        assert_eq!(get("fetch"), Dur::from_ps(60)); // 100 minus nested wire
        assert_eq!(get("wire"), Dur::from_ps(40));
        assert_eq!(get("other"), Dur::from_ps(50)); // uncovered tail
                                                    // First-appearance ordering along the timeline.
        assert_eq!(attr[0].0, "fetch");
    }

    #[test]
    fn write_log_carries_origin_and_issue_instant() {
        let mut s = SpanStore::new();
        assert!(s.start_root("dma", SimTime::ZERO, Some(7)).is_none());
        assert!(s.writes().is_empty(), "disabled store records no writes");
        s.set_enabled(true);
        let root = s.start_root("dma", SimTime::from_ps(100), Some(7)).unwrap();
        s.record_write(root, 0x4000, 256, SimTime::from_ps(900), Some(3));
        let w = s.writes()[0];
        assert_eq!(w.origin, Some(7), "root span's device");
        assert_eq!(w.dest, Some(3));
        assert_eq!(w.issued, SimTime::from_ps(100), "root span's start");
        assert_eq!(w.commit, SimTime::from_ps(900));
        assert_eq!((w.addr, w.len), (0x4000, 256));
        s.clear();
        assert!(s.writes().is_empty());
    }

    #[test]
    fn end_keeps_latest_commit() {
        let mut s = SpanStore::new();
        s.set_enabled(true);
        let root = s.start_root("multi", SimTime::ZERO, None).unwrap();
        s.end_root(root, SimTime::from_ps(500));
        s.end_root(root, SimTime::from_ps(200));
        assert_eq!(s.root_elapsed(root.root), Some(Dur::from_ps(500)));
    }

    #[test]
    fn json_and_tree_render() {
        let mut s = SpanStore::new();
        s.set_enabled(true);
        let root = s.start_root("pio", SimTime::ZERO, Some(0)).unwrap();
        s.segment(
            root,
            "wire",
            SimTime::ZERO,
            SimTime::from_ps(70_000),
            Some(3),
        );
        s.end_root(root, SimTime::from_ps(80_000));
        let json = s.to_json();
        assert!(json.contains("\"name\":\"wire\""));
        assert!(json.contains("\"start_ps\":0"));
        let tree = s.tree_text();
        assert!(tree.starts_with("pio ["));
        assert!(tree.contains("  wire ["));
        let chrome = s.chrome_trace_json();
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"s\"") && chrome.contains("\"ph\":\"f\""));
    }
}
