//! Deterministic time-series gauge sampling and the progress watchdog.
//!
//! Both tools observe the simulation without perturbing it — the continuous
//! half of the telemetry determinism contract ([`crate::metrics`]):
//!
//! * [`Sampler`] records the level of every registered gauge at a fixed
//!   simulated-time period. It never schedules events: the driving loop
//!   (e.g. the PCIe fabric's `step()`) peeks the time of the next queued
//!   event and lets the sampler catch up over the *already decided* gap, so
//!   an instrumented run pops exactly the same events at exactly the same
//!   instants as an uninstrumented one.
//! * [`Watchdog`] detects livelock/stall: the driver reports forward
//!   progress (DRAM commits, interrupts) and checks for expiry between
//!   events; when the configured simulated window passes without progress
//!   the watchdog captures a [`StallReport`] carrying a rendered diagnosis
//!   instead of leaving a silently non-terminating (or silently draining)
//!   event loop.

use crate::json::JsonValue;
use crate::metrics::MetricsHub;
use crate::time::{Dur, SimTime};
use std::collections::HashMap;

/// The sampled time-series of one gauge.
#[derive(Clone, Debug, Default)]
pub struct GaugeSeries {
    /// The gauge's hierarchical dot name (e.g. `link.0.fwd.queue_depth`).
    pub name: String,
    /// `(instant, level)` pairs in increasing time order.
    pub samples: Vec<(SimTime, i64)>,
}

/// Periodic, deterministic recorder of gauge time-series.
///
/// A `Sampler` is passive: it holds the next due instant and the recorded
/// series, and the event loop calls [`Sampler::capture`] for every due
/// instant strictly before the next event is popped. Because capture
/// instants are a pure function of the period and the event timeline, the
/// recorded series are byte-identical across runs — and absent entirely from
/// the event queue, so enabling sampling cannot move a single timestamp.
#[derive(Clone, Debug)]
pub struct Sampler {
    period: Dur,
    next: SimTime,
    series: Vec<GaugeSeries>,
    index: HashMap<String, usize>,
}

impl Sampler {
    /// Creates a sampler that captures every `period` of simulated time,
    /// with the first capture due at `t = 0`.
    ///
    /// # Panics
    /// Panics on a zero period (the catch-up loop would never terminate).
    pub fn new(period: Dur) -> Self {
        assert!(period > Dur::ZERO, "sampler period must be positive");
        Sampler {
            period,
            next: SimTime::ZERO,
            series: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The configured sampling period.
    pub fn period(&self) -> Dur {
        self.period
    }

    /// The next instant a capture is due.
    pub fn next_due(&self) -> SimTime {
        self.next
    }

    /// True when a capture is due strictly before `t` — the driver calls
    /// this with the time of the next queued event, so all same-instant
    /// events at a boundary are processed before the boundary is sampled.
    pub fn due_before(&self, t: SimTime) -> bool {
        self.next < t
    }

    /// Records the current level of every gauge in `hub` at instant `at`
    /// and advances the next due instant by one period.
    pub fn capture(&mut self, at: SimTime, hub: &MetricsHub) {
        for (name, current, _peak) in hub.gauges_iter() {
            let idx = match self.index.get(name) {
                Some(&i) => i,
                None => {
                    let i = self.series.len();
                    self.index.insert(name.to_string(), i);
                    self.series.push(GaugeSeries {
                        name: name.to_string(),
                        samples: Vec::new(),
                    });
                    i
                }
            };
            self.series[idx].samples.push((at, current));
        }
        self.next = self.next.saturating_add(self.period);
    }

    /// All recorded series, sorted by gauge name.
    pub fn series(&self) -> Vec<&GaugeSeries> {
        let mut out: Vec<&GaugeSeries> = self.series.iter().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Looks up one series by gauge name.
    pub fn series_by_name(&self, name: &str) -> Option<&GaugeSeries> {
        self.index.get(name).map(|&i| &self.series[i])
    }

    /// Number of captures taken so far (every series has this many samples,
    /// except gauges registered after the first capture).
    pub fn captures(&self) -> usize {
        self.series
            .iter()
            .map(|s| s.samples.len())
            .max()
            .unwrap_or(0)
    }

    /// Mean level of one series, as an exact rational rounded toward zero
    /// (`None` when empty). Integer arithmetic keeps report output
    /// byte-stable.
    pub fn mean_of(&self, name: &str) -> Option<i64> {
        let s = self.series_by_name(name)?;
        if s.samples.is_empty() {
            return None;
        }
        let sum: i64 = s.samples.iter().map(|&(_, v)| v).sum();
        Some(sum / s.samples.len() as i64)
    }

    /// Fraction of samples with a level strictly above zero, in parts per
    /// thousand (integer, byte-stable). `None` when the series is unknown
    /// or empty.
    pub fn busy_permille(&self, name: &str) -> Option<u64> {
        let s = self.series_by_name(name)?;
        if s.samples.is_empty() {
            return None;
        }
        let busy = s.samples.iter().filter(|&&(_, v)| v > 0).count() as u64;
        Some(busy * 1000 / s.samples.len() as u64)
    }

    /// Serializes every series as JSON, sorted by name:
    /// `{"schema":"tca-series/v1","period_ns":N,"series":{name:[[t_ns,v],…]}}`.
    /// Timestamps are integer nanoseconds; byte-identical across runs.
    pub fn to_json(&self) -> String {
        let mut root = JsonValue::object();
        root.push("schema", JsonValue::from("tca-series/v1"));
        root.push("period_ns", JsonValue::from(self.period.as_ps() / 1_000));
        let mut series = JsonValue::object();
        for s in self.series() {
            let points: Vec<JsonValue> = s
                .samples
                .iter()
                .map(|&(t, v)| {
                    JsonValue::Array(vec![JsonValue::from(t.as_ps() / 1_000), JsonValue::from(v)])
                })
                .collect();
            series.push(s.name.clone(), JsonValue::Array(points));
        }
        root.push("series", series);
        root.to_json()
    }

    /// Renders every sample as a Chrome-trace *counter* event (`"ph":"C"`),
    /// as a JSON array string suitable for splicing into an existing trace's
    /// `traceEvents`. Returns `"[]"` when nothing was sampled.
    pub fn chrome_counter_events_json(&self) -> String {
        let mut events: Vec<JsonValue> = Vec::new();
        for s in self.series() {
            for &(t, v) in &s.samples {
                let mut ev = JsonValue::object();
                ev.push("name", JsonValue::from(s.name.clone()));
                ev.push("ph", JsonValue::from("C"));
                ev.push("ts", JsonValue::from(t.as_us_f64()));
                ev.push("pid", JsonValue::from(0u64));
                ev.push("tid", JsonValue::from(0u64));
                let mut args = JsonValue::object();
                args.push("value", JsonValue::from(v));
                ev.push("args", args);
                events.push(ev);
            }
        }
        JsonValue::Array(events).to_json()
    }
}

/// Everything the watchdog knew when it fired.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Simulated instant the stall was detected.
    pub at: SimTime,
    /// Last instant forward progress was reported.
    pub last_progress: SimTime,
    /// The configured no-progress window.
    pub window: Dur,
    /// Human-readable diagnosis assembled by the driver (credit state,
    /// oldest in-flight span, stalled engines).
    pub diagnosis: String,
}

impl StallReport {
    /// Renders the report as a multi-line message.
    pub fn render(&self) -> String {
        format!(
            "WATCHDOG: no forward progress for {} (window {}, last progress at {}, detected at {})\n{}",
            self.at.since(self.last_progress),
            self.window,
            self.last_progress,
            self.at,
            self.diagnosis
        )
    }
}

/// Simulated-time progress watchdog.
///
/// The driver calls [`Watchdog::progress`] at every forward-progress event
/// (DRAM commit, interrupt delivery) and [`Watchdog::expired`] between
/// events; on expiry it assembles a diagnosis string and calls
/// [`Watchdog::fire`]. The watchdog fires at most once and never touches
/// the event queue, so arming it is time-neutral.
#[derive(Clone, Debug)]
pub struct Watchdog {
    window: Dur,
    last_progress: SimTime,
    fired: Option<StallReport>,
}

impl Watchdog {
    /// Creates a watchdog with the given no-progress window.
    ///
    /// # Panics
    /// Panics on a zero window.
    pub fn new(window: Dur) -> Self {
        assert!(window > Dur::ZERO, "watchdog window must be positive");
        Watchdog {
            window,
            last_progress: SimTime::ZERO,
            fired: None,
        }
    }

    /// The configured no-progress window.
    pub fn window(&self) -> Dur {
        self.window
    }

    /// Last instant progress was reported.
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }

    /// Reports forward progress at instant `at`.
    pub fn progress(&mut self, at: SimTime) {
        self.last_progress = self.last_progress.max(at);
    }

    /// True when the window has elapsed without progress and the watchdog
    /// has not fired yet.
    pub fn expired(&self, now: SimTime) -> bool {
        self.fired.is_none() && now > self.last_progress.saturating_add(self.window)
    }

    /// Fires with a driver-assembled diagnosis. Later calls are ignored —
    /// the first stall is the root cause worth reporting.
    pub fn fire(&mut self, at: SimTime, diagnosis: String) {
        if self.fired.is_none() {
            self.fired = Some(StallReport {
                at,
                last_progress: self.last_progress,
                window: self.window,
                diagnosis,
            });
        }
    }

    /// The stall report, when the watchdog has fired.
    pub fn report(&self) -> Option<&StallReport> {
        self.fired.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with_gauge(name: &str, v: i64) -> MetricsHub {
        let mut hub = MetricsHub::new();
        let g = hub.gauge(name);
        hub.gauge_set(g, v);
        hub
    }

    #[test]
    fn sampler_captures_on_strict_period_grid() {
        let mut s = Sampler::new(Dur::from_ns(100));
        let hub = hub_with_gauge("q", 3);
        // A capture at t is due only for events strictly after t.
        assert!(!s.due_before(SimTime::ZERO));
        assert!(s.due_before(SimTime::from_ps(1)));
        s.capture(SimTime::ZERO, &hub);
        assert_eq!(s.next_due(), SimTime::ZERO + Dur::from_ns(100));
        s.capture(SimTime::ZERO + Dur::from_ns(100), &hub);
        let series = s.series_by_name("q").unwrap();
        assert_eq!(
            series.samples,
            vec![(SimTime::ZERO, 3), (SimTime::ZERO + Dur::from_ns(100), 3)]
        );
        assert_eq!(s.captures(), 2);
    }

    #[test]
    fn sampler_series_sorted_and_json_stable() {
        let mut hub = MetricsHub::new();
        let b = hub.gauge("b.depth");
        let a = hub.gauge("a.depth");
        hub.gauge_set(b, 2);
        hub.gauge_set(a, 1);
        let mut s = Sampler::new(Dur::from_ns(50));
        s.capture(SimTime::ZERO, &hub);
        let names: Vec<_> = s.series().iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, ["a.depth", "b.depth"]);
        let j = s.to_json();
        assert!(j.starts_with("{\"schema\":\"tca-series/v1\",\"period_ns\":50,"));
        assert!(j.contains("\"a.depth\":[[0,1]]"));
        // Identical construction → identical bytes.
        let mut s2 = Sampler::new(Dur::from_ns(50));
        s2.capture(SimTime::ZERO, &hub);
        assert_eq!(j, s2.to_json());
    }

    #[test]
    fn sampler_summaries_use_integer_arithmetic() {
        let mut hub = MetricsHub::new();
        let g = hub.gauge("q");
        let mut s = Sampler::new(Dur::from_ns(10));
        for (i, v) in [0i64, 3, 0, 5].iter().enumerate() {
            hub.gauge_set(g, *v);
            s.capture(SimTime::from_ps(i as u64 * 10_000), &hub);
        }
        assert_eq!(s.mean_of("q"), Some(2)); // 8 / 4
        assert_eq!(s.busy_permille("q"), Some(500)); // 2 of 4
        assert_eq!(s.mean_of("missing"), None);
    }

    #[test]
    fn chrome_counter_events_shape() {
        let hub = hub_with_gauge("link.0.fwd.queue_depth", 7);
        let mut s = Sampler::new(Dur::from_us(1));
        s.capture(SimTime::from_ps(2_000_000), &hub);
        let j = s.chrome_counter_events_json();
        assert!(j.contains("\"ph\":\"C\""));
        assert!(j.contains("\"ts\":2"));
        assert!(j.contains("\"value\":7"));
        assert_eq!(
            Sampler::new(Dur::from_us(1)).chrome_counter_events_json(),
            "[]"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = Sampler::new(Dur::ZERO);
    }

    #[test]
    fn watchdog_fires_once_after_quiet_window() {
        let mut w = Watchdog::new(Dur::from_us(10));
        w.progress(SimTime::from_ps(5_000_000));
        assert!(!w.expired(SimTime::from_ps(15_000_000))); // exactly at bound
        assert!(w.expired(SimTime::from_ps(15_000_001)));
        w.fire(SimTime::from_ps(15_000_001), "link 0 starved".into());
        assert!(
            !w.expired(SimTime::from_ps(99_000_000)),
            "fires at most once"
        );
        w.fire(SimTime::from_ps(99_000_000), "ignored".into());
        let r = w.report().unwrap();
        assert_eq!(r.at, SimTime::from_ps(15_000_001));
        assert_eq!(r.diagnosis, "link 0 starved");
        assert!(r.render().contains("WATCHDOG"));
        assert!(r.render().contains("link 0 starved"));
    }

    #[test]
    fn watchdog_progress_is_monotonic() {
        let mut w = Watchdog::new(Dur::from_ns(100));
        w.progress(SimTime::from_ps(500_000));
        w.progress(SimTime::from_ps(100)); // stale report must not rewind
        assert_eq!(w.last_progress(), SimTime::from_ps(500_000));
    }
}
