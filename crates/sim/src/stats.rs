//! Measurement collectors used by device models and the bench harness.

use crate::time::{Dur, SimTime};
use std::fmt;

/// Incrementing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }
    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Accumulates transferred bytes over a time window and reports throughput.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthMeter {
    bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl Default for BandwidthMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthMeter {
    /// New meter with no samples.
    pub const fn new() -> Self {
        BandwidthMeter {
            bytes: 0,
            first: None,
            last: SimTime::ZERO,
        }
    }

    /// Records `bytes` delivered at instant `at`. Samples may arrive out of
    /// order, so the window start tracks the minimum timestamp seen, not the
    /// first call.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.first = Some(match self.first {
            Some(first) => first.min(at),
            None => at,
        });
        self.bytes += bytes;
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Throughput between `start` and `end` instants chosen by the caller
    /// (e.g. doorbell time → completion time), in bytes/second.
    pub fn throughput_over(&self, start: SimTime, end: SimTime) -> f64 {
        let dur = end.since(start);
        if dur == Dur::ZERO {
            return 0.0;
        }
        self.bytes as f64 / dur.as_s_f64()
    }

    /// Throughput over the observed window (first to last record).
    pub fn throughput(&self) -> f64 {
        match self.first {
            Some(first) if self.last > first => self.throughput_over(first, self.last),
            _ => 0.0,
        }
    }
}

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }
    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Fixed-layout log₂ latency histogram: bucket *i* counts samples with
/// `floor(log2(ns)) == i`, saturating at the top bucket. Cheap enough to
/// leave enabled in all device models.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    stats: OnlineStats,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            stats: OnlineStats::new(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Dur) {
        let ns = d.as_ps() / 1_000;
        let idx = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(63)
        };
        self.buckets[idx] += 1;
        self.stats.add(d.as_ns_f64());
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.stats.mean()
    }

    /// Approximate percentile (bucket upper bound), `q` in `[0, 1]`.
    pub fn percentile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (1u64 << (i + 1)) as f64; // bucket upper bound in ns
            }
        }
        f64::MAX
    }

    /// Underlying scalar statistics.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ns p50≤{:.0}ns p99≤{:.0}ns max={:.1}ns",
            self.count(),
            self.mean_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.99),
            self.stats.max().unwrap_or(0.0),
        )
    }
}

/// Sub-buckets per power-of-two octave in an [`HdrHistogram`]: 16, giving a
/// worst-case relative quantization error of 1/16 (6.25 %).
const HDR_SUBS: usize = 16;
/// Bucket count: values `0..16` get one exact bucket each, then 60 octaves
/// (`msb` 4..=63) of 16 sub-buckets.
const HDR_BUCKETS: usize = HDR_SUBS + 60 * HDR_SUBS;

/// Log-linear (HDR-style) latency histogram with *exact integer* bucket
/// bounds, recorded at nanosecond granularity.
///
/// Unlike [`LatencyHistogram`] (one bucket per power of two, float
/// percentiles), this keeps 16 sub-buckets per octave so percentiles are
/// accurate to within 1/16 relative error, and every reported value is an
/// integer number of nanoseconds — byte-stable across platforms, which is
/// what the health report and its CI schema gate need. p50/p99/p999 are
/// derivable without storing individual samples.
#[derive(Clone)]
pub struct HdrHistogram {
    buckets: Box<[u64; HDR_BUCKETS]>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for HdrHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HdrHistogram")
            .field("count", &self.count)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Maps a nanosecond value to its bucket index.
fn hdr_index(ns: u64) -> usize {
    if ns < HDR_SUBS as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros() as usize; // >= 4 here
    let shift = msb - 4;
    let sub = ((ns >> shift) & 0xf) as usize;
    HDR_SUBS + (msb - 4) * HDR_SUBS + sub
}

/// Exact upper bound (inclusive, in ns) of bucket `i` — the value every
/// percentile query reports for samples landing in that bucket.
fn hdr_upper_bound(i: usize) -> u64 {
    if i < HDR_SUBS {
        return i as u64;
    }
    let msb = 4 + (i - HDR_SUBS) / HDR_SUBS;
    let sub = ((i - HDR_SUBS) % HDR_SUBS) as u64;
    let shift = (msb - 4) as u32;
    let lower = (HDR_SUBS as u64 + sub) << shift;
    lower + (1u64 << shift) - 1
}

impl HdrHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            buckets: Box::new([0; HDR_BUCKETS]),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample (truncated to whole nanoseconds).
    pub fn record(&mut self, d: Dur) {
        self.record_ns(d.as_ps() / 1_000);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[hdr_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample in ns (exact; 0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest sample in ns (exact; 0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean in ns, rounded down (exact integer arithmetic; 0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Percentile `q` in `[0, 1]` as the exact integer upper bound of the
    /// bucket holding the target sample, clamped to the observed max so
    /// `percentile_ns(1.0) == max_ns()` when the max is a bucket bound.
    /// Empty histograms report 0. `q` outside `[0, 1]` (including NaN) is
    /// clamped.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0)) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return hdr_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

impl fmt::Display for HdrHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={}ns p50≤{}ns p99≤{}ns p999≤{}ns max={}ns",
            self.count(),
            self.mean_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.99),
            self.percentile_ns(0.999),
            self.max_ns(),
        )
    }
}

/// Formats a throughput in the unit convention the paper uses (Gbytes/sec,
/// decimal giga).
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.3} GB/s", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bandwidth_meter_window() {
        let mut m = BandwidthMeter::new();
        m.record(SimTime::from_ps(0), 500);
        m.record(SimTime::from_ps(1_000_000), 500); // 1 µs window
                                                    // 1000 bytes over 1 µs = 1 GB/s.
        assert!((m.throughput() - 1e9).abs() < 1.0);
        assert_eq!(m.bytes(), 1000);
    }

    #[test]
    fn bandwidth_meter_explicit_window() {
        let mut m = BandwidthMeter::new();
        m.record(SimTime::from_ps(500), 4096);
        let bw = m.throughput_over(SimTime::ZERO, SimTime::from_ps(1_000_000));
        assert!((bw - 4.096e9).abs() < 1.0);
    }

    #[test]
    fn bandwidth_meter_empty_or_instantaneous() {
        let m = BandwidthMeter::new();
        assert_eq!(m.throughput(), 0.0);
        let mut m = BandwidthMeter::new();
        m.record(SimTime::from_ps(10), 100);
        assert_eq!(m.throughput(), 0.0, "single instant has no window");
    }

    #[test]
    fn bandwidth_meter_out_of_order_samples() {
        // Regression: the window start must be the minimum timestamp seen,
        // not whichever sample happened to arrive first.
        let mut fwd = BandwidthMeter::new();
        fwd.record(SimTime::from_ps(0), 500);
        fwd.record(SimTime::from_ps(1_000_000), 500);
        let mut rev = BandwidthMeter::new();
        rev.record(SimTime::from_ps(1_000_000), 500);
        rev.record(SimTime::from_ps(0), 500);
        assert!((rev.throughput() - fwd.throughput()).abs() < 1e-9);
        assert!((rev.throughput() - 1e9).abs() < 1.0);
    }

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Dur::from_ns(100)); // bucket 6 (64..128)
        }
        for _ in 0..10 {
            h.record(Dur::from_ns(10_000)); // bucket 13 (8192..16384)
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean_ns() - 1090.0).abs() < 1e-9);
        assert_eq!(h.percentile_ns(0.5), 128.0);
        assert_eq!(h.percentile_ns(0.99), 16384.0);
    }

    #[test]
    fn histogram_sub_ns_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Dur::from_ps(500)); // < 1 ns lands in bucket 0
        assert_eq!(h.count(), 1);
        assert!(h.percentile_ns(1.0) >= 2.0);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        // Regression: an empty histogram must report 0.0, not the upper
        // bound of bucket 0 (2 ns) or f64::MAX.
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_ns(0.5), 0.0);
        assert_eq!(h.percentile_ns(0.0), 0.0);
        assert_eq!(h.percentile_ns(1.0), 0.0);
    }

    #[test]
    fn percentile_clamps_q_outside_unit_interval() {
        let mut h = LatencyHistogram::new();
        h.record(Dur::from_ns(100)); // bucket 6, upper bound 128 ns
        assert_eq!(h.percentile_ns(-3.0), h.percentile_ns(0.0));
        assert_eq!(h.percentile_ns(42.0), h.percentile_ns(1.0));
        assert_eq!(h.percentile_ns(42.0), 128.0);
        assert!(h.percentile_ns(f64::NAN).is_finite(), "NaN q must clamp");
    }

    #[test]
    fn percentile_q_zero_still_lands_in_first_nonempty_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Dur::from_ns(10_000)); // bucket 13
        assert_eq!(h.percentile_ns(0.0), 16384.0);
    }

    #[test]
    fn fmt_gbps_matches_paper_convention() {
        assert_eq!(fmt_gbps(3.66e9), "3.660 GB/s");
    }

    #[test]
    fn hdr_small_values_are_exact() {
        // Values below 16 ns each get their own bucket.
        let mut h = HdrHistogram::new();
        for ns in 0..16u64 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 15);
        assert_eq!(h.percentile_ns(0.0), 0);
        assert_eq!(h.percentile_ns(0.5), 7);
        assert_eq!(h.percentile_ns(1.0), 15);
    }

    #[test]
    fn hdr_bucket_bounds_are_exact_integers_with_bounded_error() {
        // Every value lands in a bucket whose inclusive bounds contain it,
        // and the quantization error is at most 1/16 of the value.
        for v in (1..10_000_000u64).step_by(997).chain([
            1,
            15,
            16,
            17,
            255,
            256,
            4095,
            4096,
            u64::MAX >> 1,
        ]) {
            let i = hdr_index(v);
            let upper = hdr_upper_bound(i);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            assert!(
                upper - v <= v / 16,
                "bucket error {} too large for {v}",
                upper - v
            );
            if i > 0 {
                assert!(hdr_upper_bound(i - 1) < v, "value {v} fits earlier bucket");
            }
        }
    }

    #[test]
    fn hdr_percentiles_on_mixed_distribution() {
        let mut h = HdrHistogram::new();
        for _ in 0..90 {
            h.record(Dur::from_ns(100));
        }
        for _ in 0..10 {
            h.record(Dur::from_ns(10_000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean_ns(), 1090);
        // 100 ns: msb 6, sub 9 → bucket [100, 103].
        assert_eq!(h.percentile_ns(0.50), 103);
        assert_eq!(h.percentile_ns(0.90), 103);
        // 10 000 ns: bucket [9728, 10239], clamped to the observed max.
        assert_eq!(h.percentile_ns(0.99), 10_000);
        assert_eq!(h.percentile_ns(0.999), 10_000);
        assert_eq!(h.max_ns(), 10_000);
    }

    #[test]
    fn hdr_empty_and_clamped_q() {
        let h = HdrHistogram::new();
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        let mut h = HdrHistogram::new();
        h.record_ns(500);
        assert_eq!(h.percentile_ns(-1.0), h.percentile_ns(0.0));
        assert_eq!(h.percentile_ns(7.0), h.percentile_ns(1.0));
        assert_eq!(h.percentile_ns(f64::NAN), h.percentile_ns(0.0));
    }

    #[test]
    fn hdr_agrees_with_log2_histogram_on_exact_samples() {
        // When every sample is identical, the HDR percentile is the exact
        // sample value (bucket bound clamped to the max), while the coarse
        // log₂ histogram reports the next power-of-two upper bound. The HDR
        // answer must never exceed the log₂ bound.
        for ns in [1u64, 100, 128, 1_000, 4_096, 65_535] {
            let mut hdr = HdrHistogram::new();
            let mut log2 = LatencyHistogram::new();
            for _ in 0..10 {
                hdr.record(Dur::from_ns(ns));
                log2.record(Dur::from_ns(ns));
            }
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(hdr.percentile_ns(q), ns, "exact sample at q={q}");
                assert!(
                    (hdr.percentile_ns(q) as f64) <= log2.percentile_ns(q),
                    "HDR bound above log2 bound for {ns} ns"
                );
            }
        }
    }
}
