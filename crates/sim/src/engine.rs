//! Generic discrete-event engine.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs with a strict
//! deterministic tie-break: events scheduled at the same instant pop in the
//! order they were scheduled. The engine is deliberately payload-agnostic;
//! the PCIe fabric layer defines the payload type and the dispatch loop.

use crate::prof::ProfCounters;
use crate::time::{Dur, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A deterministic discrete-event queue.
///
/// Invariants:
/// * time never moves backwards: popping advances `now` monotonically;
/// * scheduling in the past (before `now`) is a model bug and panics;
/// * same-instant events pop in scheduling order (FIFO tie-break).
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: std::collections::HashSet<u64>,
    /// Seqs currently in the heap and not cancelled. Bounded by `heap.len()`;
    /// membership is what makes `cancel` exact (no tombstone leak for ids
    /// that already fired or were never scheduled).
    live: std::collections::HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    /// Host-side activity counters (`tca-prof` layer one). Pure integers
    /// bumped on the existing control paths; provably unable to perturb
    /// the event stream.
    prof: ProfCounters,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            live: std::collections::HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            prof: ProfCounters::default(),
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including cancelled tombstones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (not cancelled, not yet fired) events pending.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of cancelled tombstones still parked in the heap. Always
    /// `pending() - live_count()` — the invariant the engine property
    /// tests pin down.
    #[inline]
    pub fn tombstone_count(&self) -> usize {
        self.cancelled.len()
    }

    /// True while `id` is still pending (scheduled, not fired, not
    /// cancelled) — exact membership, never fooled by tombstones.
    #[inline]
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains(&id.0)
    }

    /// Host-side activity counters accumulated since construction.
    #[inline]
    pub fn prof(&self) -> &ProfCounters {
        &self.prof
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    #[track_caller]
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        self.live.insert(seq);
        self.prof.pushes += 1;
        self.prof.peak_heap_depth = self.prof.peak_heap_depth.max(self.heap.len() as u64);
        EventId(seq)
    }

    /// Schedules `payload` after a delay relative to now.
    #[track_caller]
    pub fn schedule_in(&mut self, delay: Dur, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` only if the
    /// event is still pending (cancellation is lazy; the tombstone is
    /// dropped when the event would have popped). Cancelling an event that
    /// already fired, was already cancelled, or was never scheduled returns
    /// `false` and leaves no tombstone behind.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.prof.cancels += 1;
        self.cancelled.insert(id.0)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                self.prof.tombstone_drains += 1;
                continue;
            }
            self.live.remove(&ev.seq);
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            self.popped += 1;
            self.prof.pops += 1;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading tombstones so peek is accurate.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let seq = self.heap.pop().expect("peeked").seq;
                self.cancelled.remove(&seq);
                self.prof.tombstone_drains += 1;
            } else {
                return Some(top.at);
            }
        }
        None
    }

    /// True when no live events remain.
    pub fn is_idle(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

// Counter-independent invariant audit at end of life: whatever sequence of
// schedule/cancel/pop/peek calls ran, the ledger must close — the heap
// holds exactly the live events plus the parked tombstones, and a drained
// heap implies no live entry survived in the side sets. These re-derive
// the tombstone-leak regression (PR 4) from set sizes alone, without
// trusting the `ProfCounters` arithmetic. Debug builds only; skipped while
// unwinding so a panicking test reports its own failure, not this one.
impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            debug_assert_eq!(
                self.heap.len(),
                self.live.len() + self.cancelled.len(),
                "EventQueue dropped with heap len != live + tombstones"
            );
            if self.heap.is_empty() {
                debug_assert!(
                    self.live.is_empty(),
                    "EventQueue drained but {} live id(s) leaked",
                    self.live.len()
                );
                debug_assert!(
                    self.cancelled.is_empty(),
                    "EventQueue drained but {} tombstone(s) leaked",
                    self.cancelled.len()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), "c");
        q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ps(30));
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ps(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(100), 1);
        q.pop();
        q.schedule_in(Dur::from_ps(50), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(150));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(100), 1);
        q.pop();
        q.schedule_at(SimTime::from_ps(50), 2);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(EventId(999)), "unknown id");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_ps(20), "b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_of_fired_event_returns_false_and_leaks_nothing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        let b = q.schedule_at(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // `a` has already fired: cancelling it must fail and must not park
        // a tombstone that would shadow a live event or grow forever.
        assert!(!q.cancel(a), "cancel of fired event must return false");
        assert!(!q.cancel(a), "repeated cancel of fired event");
        assert!(q.cancel(b), "b is still pending");
        assert!(!q.cancel(b), "double-cancel of same pending event");
        assert!(q.pop().is_none());
        // Cancel-heavy model: fire-then-cancel in a loop must not grow the
        // tombstone set (it would previously accumulate one per iteration).
        for i in 0..1000u64 {
            let id = q.schedule_at(SimTime::from_ps(100 + i), "x");
            assert!(q.pop().is_some());
            assert!(!q.cancel(id));
        }
        assert!(q.cancelled.is_empty(), "no tombstones may leak");
        assert!(q.live.is_empty());
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(20)));
        assert!(!q.is_idle());
        q.pop();
        assert!(q.is_idle());
    }

    #[test]
    fn counts_executed_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_ps(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_executed(), 10);
    }

    #[test]
    fn prof_counters_track_queue_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        let b = q.schedule_at(SimTime::from_ps(20), "b");
        q.schedule_at(SimTime::from_ps(30), "c");
        assert_eq!(q.prof().pushes, 3);
        assert_eq!(q.prof().peak_heap_depth, 3);
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel must not count twice");
        assert_eq!(q.prof().cancels, 2);
        // Popping walks over both tombstones before reaching "c".
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.prof().tombstone_drains, 2);
        assert_eq!(q.prof().pops, 1, "only live events count as pops");
        assert!(q.pop().is_none());
        let p = *q.prof();
        assert_eq!(
            (
                p.pushes,
                p.pops,
                p.cancels,
                p.tombstone_drains,
                p.peak_heap_depth
            ),
            (3, 1, 2, 2, 3)
        );
    }

    #[test]
    fn prof_peek_drains_count_as_tombstone_drains() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), 0);
        q.schedule_at(SimTime::from_ps(20), 1);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(20)));
        assert_eq!(q.prof().tombstone_drains, 1);
        assert_eq!(q.prof().pops, 0, "peek must not count as a pop");
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // A chain of events each scheduling a successor must execute exactly.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(1), 0u64);
        let mut seen = vec![];
        while let Some((_, n)) = q.pop() {
            seen.push(n);
            if n < 5 {
                q.schedule_in(Dur::from_ps(2), n + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_ps(11));
    }

    #[test]
    fn drop_audit_passes_on_clean_drain_and_on_pending_events() {
        // Drained queue with cancel traffic: ledger closes, drop is silent.
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        assert!(q.cancel(a));
        while q.pop().is_some() {}
        drop(q);
        // Undrained queue (run_until-style early exit): still consistent.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), "a");
        let b = q.schedule_at(SimTime::from_ps(20), "b");
        assert!(q.cancel(b));
        drop(q);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn drop_audit_catches_forged_live_leak() {
        // Forge the exact corruption the audit exists for: a live id that
        // survived a full drain. The drop must panic (caught here) instead
        // of letting the leak escape the test unnoticed.
        let caught = std::panic::catch_unwind(|| {
            let mut q = EventQueue::new();
            q.schedule_at(SimTime::from_ps(1), ());
            while q.pop().is_some() {}
            q.live.insert(99);
        });
        assert!(caught.is_err(), "drop audit must flag live != heap ledger");
    }

    // Extends `cancel_of_fired_event_returns_false_and_leaks_nothing`
    // (the PR 4 tombstone-leak regression) from one fixed interleaving to
    // arbitrary ones: under any schedule/cancel/pop sequence, the heap
    // length (`pending()`, tombstones included) must equal live events
    // plus parked tombstones, and id membership must stay exact — every
    // id is pending iff it was scheduled and neither fired nor cancelled.
    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 64,
                .. ProptestConfig::default()
            })]

            #[test]
            fn cancel_pop_interleavings_keep_len_and_membership_exact(
                ops in proptest::collection::vec(any::<u8>(), 1..300),
            ) {
                let mut q = EventQueue::new();
                let mut ids: Vec<EventId> = Vec::new();
                let mut fired: HashSet<EventId> = HashSet::new();
                let mut cancelled: HashSet<EventId> = HashSet::new();
                let mut at = 0u64;
                for op in ops {
                    match op % 3 {
                        0 => {
                            // Schedule strictly in the future of `now`.
                            at += 1 + (op / 3) as u64;
                            let t = q.now().as_ps() + at;
                            ids.push(q.schedule_at(SimTime::from_ps(t), ()));
                        }
                        1 if !ids.is_empty() => {
                            let id = ids[(op as usize / 3) % ids.len()];
                            let expect =
                                !fired.contains(&id) && !cancelled.contains(&id);
                            prop_assert_eq!(
                                q.cancel(id),
                                expect,
                                "cancel result diverged from the model"
                            );
                            if expect {
                                cancelled.insert(id);
                            }
                        }
                        _ => {
                            if let Some(_ev) = q.pop() {
                                // Pops happen in time order; mirror by
                                // marking the earliest un-fired,
                                // un-cancelled id as fired.
                                let next = ids
                                    .iter()
                                    .find(|i| {
                                        !fired.contains(i) && !cancelled.contains(i)
                                    })
                                    .copied();
                                prop_assert!(next.is_some(), "pop with empty model");
                                fired.insert(next.unwrap());
                            }
                        }
                    }
                    // The tentpole invariants, checked after every op:
                    prop_assert_eq!(
                        q.pending(),
                        q.live_count() + q.tombstone_count(),
                        "heap len diverged from live + tombstones"
                    );
                    for id in &ids {
                        let model_live =
                            !fired.contains(id) && !cancelled.contains(id);
                        prop_assert_eq!(
                            q.is_pending(*id),
                            model_live,
                            "id membership diverged from the model"
                        );
                    }
                }
                // Drain: afterwards no live events and no leaked tombstones
                // beyond those whose events never popped (pop drains them).
                while q.pop().is_some() {}
                prop_assert_eq!(q.live_count(), 0);
                prop_assert_eq!(q.tombstone_count(), 0, "tombstones leaked past drain");
                prop_assert_eq!(q.pending(), 0);
                // Counter cross-check: every scheduled event either fired,
                // was cancelled, or drained as a tombstone.
                let p = *q.prof();
                prop_assert_eq!(p.pushes, ids.len() as u64);
                prop_assert_eq!(p.pops + p.tombstone_drains, p.pushes);
                prop_assert_eq!(p.cancels, p.tombstone_drains);
            }
        }
    }
}
