//! Generic discrete-event engine.
//!
//! [`EventQueue`] is a deterministic scheduler of `(SimTime, E)` pairs with
//! a strict tie-break: events scheduled at the same instant pop in the
//! order they were scheduled. The engine is deliberately payload-agnostic;
//! the PCIe fabric layer defines the payload type and the dispatch loop.
//!
//! # Implementation: hierarchical timing wheel
//!
//! Events live in a slab (stable indices, generation-checked handles) and
//! are threaded onto intrusive doubly-linked lists hanging off a
//! hierarchical timing wheel — [`LEVELS`] levels of [`SLOTS`] slots, each
//! level covering a 256× longer horizon than the one below, over integer
//! picoseconds. Level 0 slots each hold exactly one absolute timestamp;
//! higher levels hold coarser buckets that are *cascaded* down (lazily
//! re-binned) as the wheel's base time advances past their boundary.
//! Events beyond the wheel horizon (`2^56` ps ≈ 20 simulated hours) park
//! in a `BTreeMap` overflow tier keyed by `(time, seq)`.
//!
//! * `schedule_at` / `cancel` are O(1): a slab allocation plus a list
//!   append (or unlink) — no tombstones, no hashing, no re-heapification.
//! * `pop` is O(1) amortized: find the first occupied slot via per-level
//!   occupancy bitmaps, unlink the head.
//!
//! Determinism is preserved exactly (see DESIGN.md "Timing-wheel event
//! queue"): sequence numbers are monotone, slot lists only ever append, and
//! cascades walk their source list head→tail, so every level-0 slot is in
//! seq order and global pop order is lexicographic `(at, seq)` — the same
//! total order the previous binary-heap implementation produced, byte for
//! byte in every flight log.

use crate::prof::ProfCounters;
use crate::time::{Dur, SimTime};
use std::collections::BTreeMap;

/// Bits of the slot index at each wheel level (256 slots per level).
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; together they cover `2^(8*7) = 2^56` picoseconds.
const LEVELS: usize = 7;
/// Null link in the intrusive slot lists.
const NIL: u32 = u32::MAX;
/// `Entry::level` marker: parked in the overflow `BTreeMap`.
const LVL_OVERFLOW: u8 = 0xFF;
/// `Entry::level` marker: entry is on the free list.
const LVL_FREE: u8 = 0xFE;

/// Identifier of a scheduled event, usable for cancellation.
///
/// Encodes the slab index (low 32 bits) and the slot's generation (high 32
/// bits); a cancel with a stale generation — the event already fired or
/// was already cancelled and its slot reused — is detected exactly and
/// returns `false`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn encode(idx: u32, gen: u32) -> EventId {
        EventId((u64::from(gen) << 32) | u64::from(idx))
    }

    fn decode(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

/// One slab slot: an event (live in a wheel slot or the overflow tier) or
/// a free-list entry awaiting reuse.
struct Entry<E> {
    at: u64,
    seq: u64,
    gen: u32,
    prev: u32,
    next: u32,
    /// Wheel level, or `LVL_OVERFLOW` / `LVL_FREE`.
    level: u8,
    slot: u8,
    payload: Option<E>,
}

/// Head/tail of one wheel slot's intrusive list.
#[derive(Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: SlotList = SlotList {
    head: NIL,
    tail: NIL,
};

/// A deterministic discrete-event queue (hierarchical timing wheel).
///
/// Invariants:
/// * time never moves backwards: popping advances `now` monotonically;
/// * scheduling in the past (before `now`) is a model bug and panics;
/// * same-instant events pop in scheduling order (FIFO tie-break).
pub struct EventQueue<E> {
    slab: Vec<Entry<E>>,
    free: Vec<u32>,
    wheel: Vec<SlotList>,
    /// Per-level slot-occupancy bitmaps (256 bits each).
    occ: [[u64; 4]; LEVELS],
    /// Far-future tier: events whose time differs from `base` above the
    /// wheel horizon, keyed `(at, seq)` so drain order is pop order.
    overflow: BTreeMap<(u64, u64), u32>,
    /// Wheel origin in ps. Equal to `now` between operations; advances
    /// only inside `pop`/`pop_run` (never in `peek_time` — scheduling
    /// between a peek and the pop it predicts must stay legal).
    base: u64,
    live: usize,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    /// Host-side activity counters (`tca-prof` layer one). Pure integers
    /// bumped on the existing control paths; provably unable to perturb
    /// the event stream.
    prof: ProfCounters,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            wheel: vec![EMPTY_SLOT; LEVELS * SLOTS],
            occ: [[0; 4]; LEVELS],
            overflow: BTreeMap::new(),
            base: 0,
            live: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            prof: ProfCounters::default(),
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Number of live events still pending. Cancelled events leave no
    /// residue, so this is exact (the old heap counted tombstones too).
    #[inline]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// True while `id` is still pending (scheduled, not fired, not
    /// cancelled) — exact via the slot's generation check.
    #[inline]
    pub fn is_pending(&self, id: EventId) -> bool {
        let (idx, gen) = id.decode();
        self.slab
            .get(idx as usize)
            .is_some_and(|e| e.gen == gen && e.level != LVL_FREE)
    }

    /// Host-side activity counters accumulated since construction.
    #[inline]
    pub fn prof(&self) -> &ProfCounters {
        &self.prof
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    #[track_caller]
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let e = &mut self.slab[idx as usize];
                e.at = at.as_ps();
                e.seq = seq;
                e.payload = Some(payload);
                idx
            }
            None => {
                let idx = self.slab.len() as u32;
                assert!(idx != NIL, "event slab exhausted");
                self.slab.push(Entry {
                    at: at.as_ps(),
                    seq,
                    gen: 0,
                    prev: NIL,
                    next: NIL,
                    level: LVL_FREE,
                    slot: 0,
                    payload: Some(payload),
                });
                idx
            }
        };
        let gen = self.slab[idx as usize].gen;
        self.place(idx);
        self.live += 1;
        self.prof.pushes += 1;
        self.prof.peak_pending = self.prof.peak_pending.max(self.live as u64);
        EventId::encode(idx, gen)
    }

    /// Schedules `payload` after a delay relative to now.
    #[track_caller]
    pub fn schedule_in(&mut self, delay: Dur, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event in O(1): the entry is unlinked
    /// from its wheel slot (or overflow tier) immediately — no tombstone
    /// is parked and nothing is drained later. Returns `true` only if the
    /// event was still pending; an event that already fired, was already
    /// cancelled, or was never scheduled returns `false` (the slab
    /// generation check makes this exact).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (idx, gen) = id.decode();
        let Some(e) = self.slab.get(idx as usize) else {
            return false;
        };
        if e.gen != gen || e.level == LVL_FREE {
            return false;
        }
        if e.level == LVL_OVERFLOW {
            let key = (e.at, e.seq);
            self.overflow.remove(&key);
        } else {
            self.unlink(idx);
        }
        self.release(idx);
        self.live -= 1;
        self.prof.cancels += 1;
        true
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.live == 0 {
                return None;
            }
            let Some((level, slot)) = self.first_occupied() else {
                self.admit_overflow();
                continue;
            };
            if level > 0 {
                self.cascade(level, slot);
                continue;
            }
            let idx = self.wheel[slot].head;
            self.unlink(idx);
            let e = &mut self.slab[idx as usize];
            let at = e.at;
            let payload = e.payload.take().expect("live entry has a payload");
            debug_assert!(at >= self.now.as_ps(), "event queue went backwards");
            self.release(idx);
            self.base = at;
            self.now = SimTime::from_ps(at);
            self.live -= 1;
            self.popped += 1;
            self.prof.pops += 1;
            return Some((self.now, payload));
        }
    }

    /// Pops the entire run of events sharing the earliest timestamp into
    /// `out` (in FIFO seq order), advancing the clock once. Returns the
    /// run's timestamp, or `None` when the queue is empty.
    ///
    /// Equivalent to calling [`EventQueue::pop`] until the head timestamp
    /// changes — a level-0 wheel slot holds exactly one absolute
    /// timestamp, so the whole batch is one list detach. Events the caller
    /// schedules *at the same timestamp* while dispatching the batch carry
    /// larger seqs and surface in a later run, exactly as they would have
    /// popped after the batch one-by-one.
    pub fn pop_run(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        loop {
            if self.live == 0 {
                return None;
            }
            let Some((level, slot)) = self.first_occupied() else {
                self.admit_overflow();
                continue;
            };
            if level > 0 {
                self.cascade(level, slot);
                continue;
            }
            let mut idx = self.detach_all(slot);
            let at = self.slab[idx as usize].at;
            debug_assert!(at >= self.now.as_ps(), "event queue went backwards");
            self.base = at;
            self.now = SimTime::from_ps(at);
            while idx != NIL {
                let e = &mut self.slab[idx as usize];
                debug_assert_eq!(e.at, at, "level-0 slot mixed timestamps");
                let next = e.next;
                out.push(e.payload.take().expect("live entry has a payload"));
                self.release(idx);
                self.live -= 1;
                self.popped += 1;
                self.prof.pops += 1;
                idx = next;
            }
            return Some(self.now);
        }
    }

    /// Timestamp of the next event without popping it.
    ///
    /// Never advances the wheel base: `schedule_at(t)` for any
    /// `now <= t <= peek_time()` must remain legal between a peek and the
    /// pop it predicts (the `run_until` + `drive` pattern relies on it).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        if let Some((level, slot)) = self.first_occupied() {
            if level == 0 {
                // A level-0 slot holds exactly one timestamp: base's page
                // with the slot index as the low byte.
                let page = self.base & !u64::from(u8::MAX);
                return Some(SimTime::from_ps(page | (slot & (SLOTS - 1)) as u64));
            }
            // Coarser buckets mix timestamps; scan the (short) list.
            let mut min = u64::MAX;
            let mut idx = self.wheel[level * SLOTS + (slot & (SLOTS - 1))].head;
            while idx != NIL {
                let e = &self.slab[idx as usize];
                min = min.min(e.at);
                idx = e.next;
            }
            return Some(SimTime::from_ps(min));
        }
        self.overflow
            .first_key_value()
            .map(|(&(at, _), _)| SimTime::from_ps(at))
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    // -- wheel internals ----------------------------------------------------

    /// Wheel level for time `at` given the current base: the index of the
    /// highest 8-bit block in which `at` differs from `base`, or
    /// `LEVELS..` (overflow) when they differ above the wheel horizon.
    #[inline]
    fn level_for(&self, at: u64) -> usize {
        let x = at ^ self.base;
        if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// Files entry `idx` into the wheel slot (or overflow tier) its time
    /// maps to relative to the current base, appending at the tail so
    /// every slot list stays in ascending-seq order.
    fn place(&mut self, idx: u32) {
        let (at, seq) = {
            let e = &self.slab[idx as usize];
            (e.at, e.seq)
        };
        let level = self.level_for(at);
        if level >= LEVELS {
            let e = &mut self.slab[idx as usize];
            e.level = LVL_OVERFLOW;
            e.prev = NIL;
            e.next = NIL;
            self.overflow.insert((at, seq), idx);
            return;
        }
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let cell = level * SLOTS + slot;
        let tail = self.wheel[cell].tail;
        {
            let e = &mut self.slab[idx as usize];
            e.level = level as u8;
            e.slot = slot as u8;
            e.prev = tail;
            e.next = NIL;
        }
        if tail == NIL {
            self.wheel[cell].head = idx;
        } else {
            self.slab[tail as usize].next = idx;
        }
        self.wheel[cell].tail = idx;
        self.occ[level][slot >> 6] |= 1u64 << (slot & 63);
    }

    /// Unlinks entry `idx` from its wheel slot list, clearing the
    /// occupancy bit when the slot empties.
    fn unlink(&mut self, idx: u32) {
        let (prev, next, level, slot) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next, e.level as usize, e.slot as usize)
        };
        let cell = level * SLOTS + slot;
        if prev == NIL {
            self.wheel[cell].head = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        if next == NIL {
            self.wheel[cell].tail = prev;
        } else {
            self.slab[next as usize].prev = prev;
        }
        if self.wheel[cell].head == NIL {
            self.occ[level][slot >> 6] &= !(1u64 << (slot & 63));
        }
    }

    /// Detaches and returns the whole list of level-0 slot `slot`.
    fn detach_all(&mut self, slot: usize) -> u32 {
        let slot = slot & (SLOTS - 1);
        let head = self.wheel[slot].head;
        self.wheel[slot] = EMPTY_SLOT;
        self.occ[0][slot >> 6] &= !(1u64 << (slot & 63));
        head
    }

    /// First occupied `(level, slot)`, scanning coarse levels only when
    /// every finer one is empty. By the wheel invariant the finest
    /// occupied level's lowest slot holds the earliest event.
    #[inline]
    fn first_occupied(&self) -> Option<(usize, usize)> {
        for (level, words) in self.occ.iter().enumerate() {
            for (w, &bits) in words.iter().enumerate() {
                if bits != 0 {
                    return Some((level, w * 64 + bits.trailing_zeros() as usize));
                }
            }
        }
        None
    }

    /// Advances the base into level-`level` slot `slot` (zeroing all finer
    /// blocks) and re-files that bucket's events one level down. Walking
    /// the source list head→tail preserves ascending-seq order in every
    /// target slot — the cornerstone of the FIFO tie-break.
    fn cascade(&mut self, level: usize, slot: usize) {
        let slot = slot & (SLOTS - 1);
        let cell = level * SLOTS + slot;
        let mut idx = self.wheel[cell].head;
        self.wheel[cell] = EMPTY_SLOT;
        self.occ[level][slot >> 6] &= !(1u64 << (slot & 63));
        let shift = SLOT_BITS * level as u32;
        let keep_above = !((1u64 << (shift + SLOT_BITS)) - 1);
        self.base = (self.base & keep_above) | ((slot as u64) << shift);
        while idx != NIL {
            let next = self.slab[idx as usize].next;
            self.place(idx);
            self.prof.cascades += 1;
            idx = next;
        }
    }

    /// The wheel is empty but overflow is not: jump the base to the first
    /// overflow timestamp and admit every overflow event that now fits the
    /// horizon, in `(at, seq)` order (which keeps slot lists seq-sorted).
    fn admit_overflow(&mut self) {
        let (&(at, _), _) = self
            .overflow
            .first_key_value()
            .expect("live events but empty wheel implies a non-empty overflow tier");
        self.base = at;
        while let Some((&(at, _), _)) = self.overflow.first_key_value() {
            if self.level_for(at) >= LEVELS {
                break;
            }
            let ((_, _), idx) = self.overflow.pop_first().expect("peeked entry");
            self.place(idx);
            self.prof.cascades += 1;
        }
    }

    /// Returns entry `idx` to the free list, bumping its generation so any
    /// outstanding [`EventId`] for it goes stale.
    fn release(&mut self, idx: u32) {
        let e = &mut self.slab[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        e.level = LVL_FREE;
        e.payload = None;
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(30), "c");
        q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ps(30));
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_ps(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(100), 1);
        q.pop();
        q.schedule_in(Dur::from_ps(50), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(150));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(100), 1);
        q.pop();
        q.schedule_at(SimTime::from_ps(50), 2);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(EventId(999)), "unknown id");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_ps(20), "b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_of_fired_event_returns_false_and_leaks_nothing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        let b = q.schedule_at(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // `a` has already fired: its slab slot's generation moved on, so
        // cancelling it must fail — even after the slot is reused.
        assert!(!q.cancel(a), "cancel of fired event must return false");
        assert!(!q.cancel(a), "repeated cancel of fired event");
        assert!(q.cancel(b), "b is still pending");
        assert!(!q.cancel(b), "double-cancel of same pending event");
        assert!(q.pop().is_none());
        // Cancel-heavy model: fire-then-cancel in a loop must not grow
        // anything (the old heap accumulated a tombstone per iteration).
        for i in 0..1000u64 {
            let id = q.schedule_at(SimTime::from_ps(100 + i), "x");
            assert!(q.pop().is_some());
            assert!(!q.cancel(id));
        }
        assert_eq!(q.pending(), 0, "no residue may leak");
        assert!(q.slab.len() <= 2, "slab slots are reused, not leaked");
    }

    #[test]
    fn stale_id_on_reused_slot_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), 0);
        q.pop();
        // The new event reuses a's slab slot with a bumped generation.
        let b = q.schedule_at(SimTime::from_ps(20), 1);
        assert!(!q.cancel(a), "stale generation must not cancel the tenant");
        assert!(q.is_pending(b));
        assert!(!q.is_pending(a));
        assert!(q.cancel(b));
    }

    #[test]
    fn peek_skips_cancelled_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        q.schedule_at(SimTime::from_ps(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(20)));
        assert!(!q.is_idle());
        q.pop();
        assert!(q.is_idle());
    }

    #[test]
    fn peek_does_not_advance_the_wheel() {
        // Scheduling between a peek and its pop, at a time at or before
        // the peeked one, must stay legal and pop first — the `run_until`
        // + `drive` pattern depends on it.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(100_000), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(100_000)));
        q.schedule_at(SimTime::from_ps(7), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn counts_executed_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_ps(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_executed(), 10);
    }

    #[test]
    fn prof_counters_track_queue_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_ps(10), "a");
        let b = q.schedule_at(SimTime::from_ps(20), "b");
        q.schedule_at(SimTime::from_ps(30), "c");
        assert_eq!(q.prof().pushes, 3);
        assert_eq!(q.prof().peak_pending, 3);
        assert!(q.cancel(a));
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel must not count twice");
        assert_eq!(q.prof().cancels, 2);
        // Cancellation is eager: popping goes straight to "c".
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.prof().pops, 1, "only executed events count as pops");
        assert!(q.pop().is_none());
        let p = *q.prof();
        assert_eq!((p.pushes, p.pops, p.cancels, p.peak_pending), (3, 1, 2, 3));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // A chain of events each scheduling a successor must execute exactly.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(1), 0u64);
        let mut seen = vec![];
        while let Some((_, n)) = q.pop() {
            seen.push(n);
            if n < 5 {
                q.schedule_in(Dur::from_ps(2), n + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.now(), SimTime::from_ps(11));
    }

    #[test]
    fn cascades_preserve_order_across_slot_boundaries() {
        // Times straddling level boundaries (255/256 = level 0→1 edge,
        // 65535/65536 = level 1→2 edge) plus same-time pairs scheduled
        // out of order: pop order must be (time, schedule-order) exactly.
        let mut q = EventQueue::new();
        let times = [
            65_536u64, 256, 255, 65_535, 257, 256, 1, 0, 65_536, 16_777_216, 255,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_ps(t), (t, i));
        }
        let mut sorted: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        sorted.sort_by_key(|&(t, i)| (t, i));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, sorted);
        assert!(q.prof().cascades > 0, "the workload must exercise cascades");
    }

    #[test]
    fn far_future_events_park_in_overflow_and_return_in_order() {
        let mut q = EventQueue::new();
        let horizon = 1u64 << (SLOT_BITS as usize * LEVELS);
        let far_a = q.schedule_at(SimTime::from_ps(horizon + 50), "far_a");
        q.schedule_at(SimTime::from_ps(horizon + 50), "far_b");
        q.schedule_at(SimTime::from_ps(3 * horizon), "farther");
        q.schedule_at(SimTime::from_ps(40), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(40)));
        assert_eq!(q.pop().unwrap().1, "near");
        // Cancel inside the overflow tier.
        assert!(q.cancel(far_a));
        assert_eq!(q.pop().unwrap().1, "far_b");
        assert_eq!(q.now(), SimTime::from_ps(horizon + 50));
        // Scheduling relative to the jumped clock still works.
        q.schedule_in(Dur::from_ps(1), "after_jump");
        assert_eq!(q.pop().unwrap().1, "after_jump");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert!(q.pop().is_none());
    }

    #[test]
    fn horizon_edge_events_pop_in_time_seq_order_and_survive_cancel() {
        // The wheel covers [now, now + 2^56); times at or past the
        // horizon park in the BTreeMap overflow tier. Straddling the
        // exact edge — horizon-1 in the top wheel level, horizon and
        // horizon+1 in overflow, plus duplicates at the horizon itself —
        // must still pop in (time, schedule-order), and cancels must
        // land in whichever tier holds the event.
        let mut q = EventQueue::new();
        let horizon = 1u64 << (SLOT_BITS as usize * LEVELS);
        let times = [
            horizon + 1,
            horizon - 1,
            horizon,
            horizon,
            horizon - 1,
            2 * horizon - 1,
            2 * horizon,
            1,
        ];
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push(q.schedule_at(SimTime::from_ps(t), (t, i)));
        }
        // Cancel one wheel-resident and one overflow-resident event.
        assert!(q.cancel(ids[1]), "cancel below the horizon (wheel tier)");
        assert!(q.cancel(ids[3]), "cancel at the horizon (overflow tier)");
        assert!(!q.cancel(ids[3]), "double cancel must report false");
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .zip(0..)
            .filter(|&(_, i)| i != 1 && i != 3)
            .collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, expect);
        assert_eq!(q.now(), SimTime::from_ps(2 * horizon));
    }

    #[test]
    fn exact_cascade_boundary_events_pop_in_time_seq_order() {
        // Times exactly on level boundaries (multiples of 256^k) are the
        // off-by-one hot spot of hierarchical wheels: an event at 256^k
        // lives in level k's first slot and must cascade down — not fire
        // early with its whole slot, nor be skipped. Schedule boundary^k
        // for every level, each with a (boundary - 1) and (boundary + 1)
        // neighbour, out of order, and mix in cancels.
        let mut q = EventQueue::new();
        let mut times = Vec::new();
        for k in 1..=LEVELS {
            let boundary = 1u64 << (SLOT_BITS as usize * k);
            times.extend([boundary + 1, boundary - 1, boundary, boundary]);
        }
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push(q.schedule_at(SimTime::from_ps(t), (t, i)));
        }
        // Cancel one duplicate on every boundary: survivors must keep
        // their original schedule order, not renumber.
        let mut cancelled = Vec::new();
        for (i, _) in times.iter().enumerate() {
            if i % 4 == 3 {
                assert!(q.cancel(ids[i]));
                cancelled.push(i);
            }
        }
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .zip(0..)
            .filter(|&(_, i)| !cancelled.contains(&i))
            .collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(popped, expect);
        assert!(q.prof().cascades > 0, "boundary times must cascade");
    }

    #[test]
    fn pop_run_batches_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ps(10), 0);
        q.schedule_at(SimTime::from_ps(10), 1);
        q.schedule_at(SimTime::from_ps(10), 2);
        q.schedule_at(SimTime::from_ps(20), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_run(&mut batch), Some(SimTime::from_ps(10)));
        assert_eq!(batch, [0, 1, 2], "whole run, FIFO order, nothing more");
        // Same-time events scheduled mid-batch surface in the next run.
        q.schedule_at(SimTime::from_ps(20), 4);
        batch.clear();
        assert_eq!(q.pop_run(&mut batch), Some(SimTime::from_ps(20)));
        assert_eq!(batch, [3, 4]);
        batch.clear();
        assert_eq!(q.pop_run(&mut batch), None);
        assert_eq!(q.events_executed(), 5);
        assert_eq!(q.prof().pops, 5, "batched pops count per event");
    }

    #[test]
    fn pop_run_matches_pop_on_a_mixed_workload() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..200u64 {
                // Deliberate collisions: only 37 distinct timestamps.
                q.schedule_at(SimTime::from_ps((i * 7) % 37 * 1000), i);
            }
            q
        };
        let mut a = build();
        let mut via_pop = Vec::new();
        while let Some((t, e)) = a.pop() {
            via_pop.push((t, e));
        }
        let mut b = build();
        let mut via_run = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = b.pop_run(&mut batch) {
            via_run.extend(batch.drain(..).map(|e| (t, e)));
        }
        assert_eq!(via_pop, via_run);
    }

    // The determinism contract, checked against a naive reference model:
    // under any schedule/cancel/pop interleaving, pop order must equal a
    // sorted-Vec model ordered by (time, schedule seq), `is_pending` must
    // match exact membership, and `pending()` must track the live count.
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Naive reference: a Vec kept sorted by `(at, seq)`.
        #[derive(Default)]
        struct RefModel {
            events: Vec<(u64, u64, u32)>, // (at, seq, payload)
            now: u64,
            next_seq: u64,
        }

        impl RefModel {
            fn schedule(&mut self, at: u64, payload: u32) -> u64 {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.events.push((at, seq, payload));
                self.events.sort_unstable_by_key(|&(a, s, _)| (a, s));
                seq
            }

            fn cancel(&mut self, seq: u64) -> bool {
                match self.events.iter().position(|&(_, s, _)| s == seq) {
                    Some(i) => {
                        self.events.remove(i);
                        true
                    }
                    None => false,
                }
            }

            fn pop(&mut self) -> Option<(u64, u32)> {
                if self.events.is_empty() {
                    return None;
                }
                let (at, _, payload) = self.events.remove(0);
                self.now = at;
                Some((at, payload))
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 64,
                .. ProptestConfig::default()
            })]

            #[test]
            fn wheel_matches_sorted_vec_reference(
                ops in proptest::collection::vec(any::<u64>(), 1..300),
            ) {
                let mut q = EventQueue::new();
                let mut model = RefModel::default();
                // seq -> (wheel id, cancelled-or-fired) mirror.
                let mut ids: Vec<(u64, EventId)> = Vec::new();
                for word in ops {
                    let (op, arg) = ((word & 0xFF) as u8, (word >> 8) as u32);
                    match op % 5 {
                        // Near future: exercises level 0/1 and cascades.
                        0 => {
                            let at = model.now + u64::from(arg % 4096);
                            let seq = model.schedule(at, arg);
                            ids.push((seq, q.schedule_at(SimTime::from_ps(at), arg)));
                        }
                        // Far future: exercises high levels and overflow.
                        1 => {
                            let at = model.now
                                + (u64::from(arg % 64) << (8 * u32::from(arg as u8 % 8)));
                            let seq = model.schedule(at, arg);
                            ids.push((seq, q.schedule_at(SimTime::from_ps(at), arg)));
                        }
                        // Edge times: exactly on a level-cascade boundary
                        // (now + m * 256^k) or hugging it by one, for every
                        // level up to and past the 2^56 horizon — the
                        // off-by-one hot spots of hierarchical wheels.
                        2 => {
                            let k = 1 + usize::from(arg as u8 % LEVELS as u8);
                            let m = u64::from((arg >> 8) % 3) + 1;
                            let nudge = [0u64, 1, u64::MAX][(arg >> 4) as usize % 3];
                            let at = (model.now + (m << (8 * k))).wrapping_add(nudge);
                            let seq = model.schedule(at, arg);
                            ids.push((seq, q.schedule_at(SimTime::from_ps(at), arg)));
                        }
                        3 if !ids.is_empty() => {
                            let (seq, id) = ids[arg as usize % ids.len()];
                            prop_assert_eq!(
                                q.cancel(id),
                                model.cancel(seq),
                                "cancel result diverged from the model"
                            );
                        }
                        _ => {
                            let got = q.pop();
                            let want = model.pop();
                            prop_assert_eq!(
                                got.map(|(t, e)| (t.as_ps(), e)),
                                want,
                                "pop diverged from the model"
                            );
                        }
                    }
                    prop_assert_eq!(q.pending(), model.events.len());
                    for (seq, id) in &ids {
                        prop_assert_eq!(
                            q.is_pending(*id),
                            model.events.iter().any(|&(_, s, _)| s == *seq),
                            "id membership diverged from the model"
                        );
                    }
                }
                // Drain both to the end: identical tails.
                loop {
                    let got = q.pop();
                    let want = model.pop();
                    prop_assert_eq!(got.map(|(t, e)| (t.as_ps(), e)), want);
                    if want.is_none() {
                        break;
                    }
                }
                prop_assert_eq!(q.pending(), 0);
                // Counter cross-check: every scheduled event either fired
                // or was cancelled — nothing else exists.
                let p = *q.prof();
                prop_assert_eq!(p.pushes, ids.len() as u64);
                prop_assert_eq!(p.pops + p.cancels, p.pushes);
            }
        }
    }
}
