//! Simulated time.
//!
//! The whole simulation runs on an integer picosecond clock. Picoseconds
//! give enough resolution to express single-symbol times on a PCIe Gen3
//! lane (one byte at 8 GT/s ≈ 125 ps) while still allowing simulations of
//! several simulated seconds inside a `u64` (≈ 5.1 simulated months).
//!
//! Two newtypes keep instants and durations from being mixed up:
//! [`SimTime`] is a point on the simulation clock, [`Dur`] is a span.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant on the simulation clock, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Instant in nanoseconds (lossy, for reporting).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Instant in microseconds (lossy, for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; that always indicates a
    /// causality bug in a device model.
    #[inline]
    #[track_caller]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self
            .0
            .checked_sub(earlier.0)
            .expect("SimTime::since: negative duration (causality violation)"))
    }

    /// `self + d`, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Dur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Builds a span from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Dur(ps)
    }

    /// Builds a span from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns * PS_PER_NS)
    }

    /// Builds a span from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Dur(us * PS_PER_US)
    }

    /// Builds a span from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * PS_PER_MS)
    }

    /// Builds a span from seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        Dur(s * PS_PER_S)
    }

    /// Builds a span from fractional nanoseconds, rounding to the nearest
    /// picosecond. Convenient for timing parameters quoted as e.g. `0.8 ns`.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        Dur((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Span in nanoseconds (lossy, for reporting).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Span in microseconds (lossy, for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span in seconds (lossy, for reporting).
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole
    /// picosecond so that serialization time is never under-counted.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Dur {
        assert!(bytes_per_sec > 0, "zero-rate link");
        // ps = bytes * 1e12 / rate, in u128 to avoid overflow for large bursts.
        let ps = (bytes as u128 * PS_PER_S as u128).div_ceil(bytes_per_sec as u128);
        Dur(ps.try_into().expect("duration overflow"))
    }

    /// `self * n`, checked in debug builds.
    #[inline]
    pub fn times(self, n: u64) -> Dur {
        Dur(self.0.checked_mul(n).expect("duration overflow"))
    }

    /// Largest of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    #[track_caller]
    fn sub(self, d: Dur) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur overflow"))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    #[track_caller]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur underflow"))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, n: u64) -> Dur {
        self.times(n)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, n: u64) -> Dur {
        Dur(self.0 / n)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        write!(f, "0ns")
    } else if ps < PS_PER_NS {
        write!(f, "{ps}ps")
    } else if ps < PS_PER_US {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else if ps < PS_PER_MS {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps < PS_PER_S {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else {
        write!(f, "{:.6}s", ps as f64 / PS_PER_S as f64)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Dur::from_ns(1).as_ps(), 1_000);
        assert_eq!(Dur::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Dur::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Dur::from_s(1).as_ps(), 1_000_000_000_000);
        assert_eq!(Dur::from_ns_f64(0.5).as_ps(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Dur::from_ns(10);
        assert_eq!(t.as_ps(), 10_000);
        let t2 = t + Dur::from_ns(5);
        assert_eq!(t2.since(t), Dur::from_ns(5));
        assert_eq!(t2 - Dur::from_ns(15), SimTime::ZERO);
        assert_eq!(Dur::from_ns(3) * 4, Dur::from_ns(12));
        assert_eq!(Dur::from_ns(12) / 4, Dur::from_ns(3));
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn since_panics_on_negative() {
        let early = SimTime::from_ps(10);
        let late = SimTime::from_ps(20);
        let _ = early.since(late);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 4 GB/s: one byte takes 250 ps.
        let rate = 4_000_000_000;
        assert_eq!(Dur::for_bytes(1, rate).as_ps(), 250);
        assert_eq!(Dur::for_bytes(4, rate).as_ps(), 1_000);
        // Non-divisible case rounds up.
        assert_eq!(Dur::for_bytes(1, 3_000_000_000_000).as_ps(), 1);
    }

    #[test]
    fn for_bytes_large_burst_no_overflow() {
        // 1 GiB at 1 GB/s ≈ 1.07 s; must not overflow intermediate math.
        let d = Dur::for_bytes(1 << 30, 1_000_000_000);
        assert!(d.as_s_f64() > 1.0 && d.as_s_f64() < 1.1);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Dur::from_ps(1)), "1ps");
        assert_eq!(format!("{}", Dur::from_ns(1)), "1.000ns");
        assert_eq!(format!("{}", Dur::from_us(2)), "2.000us");
        assert_eq!(format!("{}", Dur::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::ZERO), "0ns");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ps(1) < SimTime::from_ps(2));
        assert!(Dur::from_ns(1) < Dur::from_us(1));
        assert_eq!(Dur::from_ns(7).max(Dur::from_ns(3)), Dur::from_ns(7));
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur::from_ns(1), Dur::from_ns(2), Dur::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::from_ns(6));
    }

    #[test]
    fn saturating_add() {
        assert_eq!(SimTime::MAX.saturating_add(Dur::from_ns(1)), SimTime::MAX);
    }
}
