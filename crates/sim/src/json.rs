//! Minimal JSON document model with a deterministic writer and a parser.
//!
//! The telemetry exporters (Chrome trace events, metrics snapshots) need to
//! *emit* JSON, and their tests need to *parse it back*; `serde_json` is not
//! vendored, so this module provides both halves over one small value type.
//!
//! Determinism matters here: two instrumented simulation runs must produce
//! byte-identical artifacts, so objects preserve insertion order (callers
//! sort when they need name ordering) and numbers format via Rust's
//! shortest-round-trip `f64` display, with integral values printed as
//! integers.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values print without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key/value pair; panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: JsonValue) -> &mut JsonValue {
        match self {
            JsonValue::Object(entries) => entries.push((key.into(), value)),
            other => panic!("JsonValue::push on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text; rejects trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> JsonValue {
        JsonValue::Num(n)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(n: u32) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(n: i64) -> JsonValue {
        JsonValue::Num(n as f64)
    }
}
impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends `s` to `out` as a quoted JSON string literal, escaping quotes,
/// backslashes, and control characters per RFC 8259. The single escaper for
/// the whole workspace: [`JsonValue`] serialization, the flight recorder's
/// JSONL lines, and `tca-bench`'s serde backend (`mini_json`) all call this,
/// so every artifact escapes identically.
pub fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let mut obj = JsonValue::object();
        obj.push("n", JsonValue::from(42u64));
        obj.push("f", JsonValue::from(1.5));
        obj.push("s", JsonValue::from("a\"b\n"));
        obj.push(
            "a",
            JsonValue::Array(vec![JsonValue::Null, JsonValue::from(true)]),
        );
        assert_eq!(
            obj.to_json(),
            r#"{"n":42,"f":1.5,"s":"a\"b\n","a":[null,true]}"#
        );
    }

    #[test]
    fn integral_floats_print_as_integers() {
        assert_eq!(JsonValue::from(1.5e9).to_json(), "1500000000");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn parses_back_what_it_writes() {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::from("link.0.fwd.wire_busy_ns"));
        obj.push("value", JsonValue::from(782.25));
        obj.push("list", JsonValue::Array(vec![JsonValue::from(1u64)]));
        let text = obj.to_json();
        let back = JsonValue::parse(&text).expect("parse");
        assert_eq!(back, obj);
        assert_eq!(back.get("value").and_then(JsonValue::as_f64), Some(782.25));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , \"a\\u0041\\n\" , { } ] } ").unwrap();
        let items = v.get("k").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_str(), Some("aA\n"));
        assert_eq!(items[2].as_object(), Some(&[][..]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }
}
