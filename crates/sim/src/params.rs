//! Parameter registry: named, introspectable timing/sizing knobs.
//!
//! Every `*Params` struct in the workspace (PEACH2, host, GPU, QPI, PCIe
//! link) registers each of its fields under a stable dotted id such as
//! `peach2.desc_gap_write` or `link.cable.latency`. The registry powers
//! the `tca-whatif` causal profiler (virtually scale one knob, re-run
//! deterministically, measure the true end-to-end delta) and the config
//! fingerprint stamped into `tca-health/v1` / `tca-bench` artifacts.
//!
//! All values are plain `u64` in the unit declared by [`ParamDesc`];
//! durations are integer picoseconds, matching the simulator clock.

use crate::flight::Fnv64;

/// Unit of a registered parameter value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamUnit {
    /// A duration in integer picoseconds.
    DurationPs,
    /// A size in bytes.
    Bytes,
    /// A rate in bytes per second.
    BytesPerSec,
    /// A dimensionless count (lanes, credits, tags, ppm, ...).
    Count,
}

impl ParamUnit {
    /// Short unit suffix for human-readable listings.
    pub fn suffix(self) -> &'static str {
        match self {
            ParamUnit::DurationPs => "ps",
            ParamUnit::Bytes => "B",
            ParamUnit::BytesPerSec => "B/s",
            ParamUnit::Count => "",
        }
    }
}

/// Descriptor of one registered parameter.
#[derive(Clone, Debug)]
pub struct ParamDesc {
    /// Stable dotted id, e.g. `peach2.desc_gap_write`.
    pub id: String,
    /// One-line doc string.
    pub doc: &'static str,
    /// Unit of the value.
    pub unit: ParamUnit,
}

impl ParamDesc {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, doc: &'static str, unit: ParamUnit) -> Self {
        ParamDesc {
            id: id.into(),
            doc,
            unit,
        }
    }

    /// Re-roots the id under a new prefix: `link.latency` nested as
    /// `host` becomes `link.host.latency`.
    pub fn nested(&self, group: &str) -> ParamDesc {
        ParamDesc {
            id: nest_id(&self.id, group),
            doc: self.doc,
            unit: self.unit,
        }
    }
}

/// Rewrites `link.latency` under nesting group `host` to
/// `link.host.latency` (the group slots in after the first segment).
pub fn nest_id(id: &str, group: &str) -> String {
    match id.split_once('.') {
        Some((head, rest)) => format!("{head}.{group}.{rest}"),
        None => format!("{group}.{id}"),
    }
}

/// Inverse of [`nest_id`]: strips nesting group `host` out of
/// `link.host.latency`, yielding `link.latency`. Returns `None` when the
/// id does not carry that group in second position.
pub fn unnest_id(id: &str, group: &str) -> Option<String> {
    let (head, rest) = id.split_once('.')?;
    let (g, tail) = rest.split_once('.')?;
    if g == group {
        Some(format!("{head}.{tail}"))
    } else {
        None
    }
}

/// A struct whose knobs are registered, introspectable parameters.
///
/// Implementations destructure the struct exhaustively, so adding a
/// field without registering it is a compile error, and the
/// completeness tests cross-check descriptor count against field count.
pub trait Parameterized {
    /// Descriptors for every registered parameter, in stable order.
    fn param_descs() -> Vec<ParamDesc>;

    /// Current value of `id`, or `None` if the id is not registered.
    fn get_param(&self, id: &str) -> Option<u64>;

    /// Sets `id` to `value`; returns `false` if the id is not
    /// registered or the value is out of range for the field.
    fn set_param(&mut self, id: &str, value: u64) -> bool;

    /// `(id, value)` pairs for every registered parameter, in
    /// descriptor order.
    fn param_values(&self) -> Vec<(String, u64)> {
        Self::param_descs()
            .into_iter()
            .map(|d| {
                let v = self.get_param(&d.id).expect("registered id must resolve");
                (d.id, v)
            })
            .collect()
    }

    /// FNV-1a fingerprint over all `(id, value)` pairs in descriptor
    /// order — the config hash stamped into artifacts.
    fn param_fingerprint(&self) -> u64 {
        fingerprint_pairs(self.param_values().iter().map(|(id, v)| (id.as_str(), *v)))
    }
}

/// FNV-1a 64-bit hash over ordered `(id, value)` pairs.
pub fn fingerprint_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, u64)>) -> u64 {
    let mut h = Fnv64::new();
    for (id, v) in pairs {
        h.update(id.as_bytes());
        h.update(&[0]);
        h.write_u64(v);
    }
    h.finish()
}

/// Renders a fingerprint as 16 lowercase hex digits.
pub fn fingerprint_hex(fnv: u64) -> String {
    format!("{fnv:016x}")
}

/// An ordered overlay of `id = value` assignments applied on top of a
/// [`Parameterized`] configuration. Insertion order is preserved (later
/// `set` of the same id replaces in place) so fingerprints and reports
/// stay deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParamSet {
    entries: Vec<(String, u64)>,
}

impl ParamSet {
    /// An empty overlay.
    pub fn new() -> Self {
        ParamSet::default()
    }

    /// Sets `id` to `value`, replacing any earlier assignment in place.
    pub fn set(&mut self, id: impl Into<String>, value: u64) -> &mut Self {
        let id = id.into();
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == id) {
            e.1 = value;
        } else {
            self.entries.push((id, value));
        }
        self
    }

    /// Looks up an assignment.
    pub fn get(&self, id: &str) -> Option<u64> {
        self.entries.iter().find(|(k, _)| k == id).map(|(_, v)| *v)
    }

    /// Iterates assignments in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no assignments are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a CLI-style `id=value` assignment.
    pub fn parse_assignment(arg: &str) -> Result<(String, u64), String> {
        let (id, val) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected id=value, got '{arg}'"))?;
        let id = id.trim();
        let val = val.trim();
        if id.is_empty() {
            return Err(format!("empty parameter id in '{arg}'"));
        }
        let value: u64 = val
            .parse()
            .map_err(|_| format!("'{val}' is not a u64 value in '{arg}'"))?;
        Ok((id.to_string(), value))
    }

    /// Applies every assignment to `target`; errors on the first
    /// unknown id or rejected value.
    pub fn apply_to<P: Parameterized>(&self, target: &mut P) -> Result<(), String> {
        for (id, v) in self.iter() {
            if !target.set_param(id, v) {
                return Err(format!("unknown or rejected parameter '{id}' = {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: u64,
        b: u64,
    }

    impl Parameterized for Toy {
        fn param_descs() -> Vec<ParamDesc> {
            vec![
                ParamDesc::new("toy.a", "knob a", ParamUnit::DurationPs),
                ParamDesc::new("toy.b", "knob b", ParamUnit::Count),
            ]
        }
        fn get_param(&self, id: &str) -> Option<u64> {
            match id {
                "toy.a" => Some(self.a),
                "toy.b" => Some(self.b),
                _ => None,
            }
        }
        fn set_param(&mut self, id: &str, value: u64) -> bool {
            match id {
                "toy.a" => self.a = value,
                "toy.b" => self.b = value,
                _ => return false,
            }
            true
        }
    }

    #[test]
    fn nest_and_unnest_round_trip() {
        assert_eq!(nest_id("link.latency", "host"), "link.host.latency");
        assert_eq!(
            unnest_id("link.host.latency", "host").as_deref(),
            Some("link.latency")
        );
        assert_eq!(unnest_id("link.cable.latency", "host"), None);
        assert_eq!(unnest_id("link.latency", "host"), None);
    }

    #[test]
    fn fingerprint_depends_on_ids_and_values() {
        let t = Toy { a: 1, b: 2 };
        let f0 = t.param_fingerprint();
        let t2 = Toy { a: 1, b: 3 };
        assert_ne!(f0, t2.param_fingerprint());
        // Stable across calls.
        assert_eq!(f0, Toy { a: 1, b: 2 }.param_fingerprint());
        assert_eq!(fingerprint_hex(0xabc), "0000000000000abc");
    }

    #[test]
    fn param_set_overlay_applies_in_order() {
        let mut s = ParamSet::new();
        s.set("toy.a", 10).set("toy.b", 20).set("toy.a", 30);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("toy.a"), Some(30));
        let mut t = Toy { a: 0, b: 0 };
        s.apply_to(&mut t).unwrap();
        assert_eq!((t.a, t.b), (30, 20));
        s.set("toy.zzz", 1);
        assert!(s.apply_to(&mut t).is_err());
    }

    #[test]
    fn parse_assignment_accepts_id_eq_value() {
        assert_eq!(
            ParamSet::parse_assignment("peach2.desc_gap_write=0").unwrap(),
            ("peach2.desc_gap_write".to_string(), 0)
        );
        assert!(ParamSet::parse_assignment("nope").is_err());
        assert!(ParamSet::parse_assignment("x=abc").is_err());
        assert!(ParamSet::parse_assignment("=5").is_err());
    }
}
