//! `tca-verify` — lint every shipped cluster preset and hazard-check a
//! traced reference workload on each.
//!
//! ```text
//! tca-verify --all-presets --deny warnings        # the CI gate
//! tca-verify --preset ring-4 --json               # one preset, JSON out
//! ```
//!
//! Exit status is 0 when every selected preset is clean (or carries only
//! warnings without `--deny warnings`), 1 otherwise. Output is fully
//! deterministic: two runs of the same binary print identical bytes.

use std::process::ExitCode;
use tca::core::prelude::*;
use tca::pcie::AddrRange;
use tca::verify::{lint_chain, ChainContext, Report};

/// One shipped configuration the gate covers.
struct Preset {
    name: &'static str,
    build: fn() -> TcaCluster,
}

const PRESETS: &[Preset] = &[
    Preset {
        name: "ring-2",
        build: || TcaClusterBuilder::new(2).build(),
    },
    Preset {
        name: "ring-4",
        build: || TcaClusterBuilder::new(4).build(),
    },
    Preset {
        name: "ring-8",
        build: || TcaClusterBuilder::new(8).build(),
    },
    Preset {
        name: "ring-16",
        build: || TcaClusterBuilder::new(16).build(),
    },
    Preset {
        name: "dual-ring-4",
        build: || {
            TcaClusterBuilder::new(4)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "dual-ring-8",
        build: || {
            TcaClusterBuilder::new(8)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "dual-ring-16",
        build: || {
            TcaClusterBuilder::new(16)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "ring-4+ib",
        build: || {
            TcaClusterBuilder::new(4)
                .with_infiniband(IbParams::default())
                .build()
        },
    },
];

/// Static lint + a traced reference workload (payload puts then a flag
/// put, node 0 → node 1) fed to the hazard detector, plus a lint of the
/// descriptor chains the drivers would actually program.
fn check_preset(p: &Preset) -> Report {
    let mut cluster = (p.build)();
    let mut rep = cluster.verify();

    // Reference workload under span tracing: the canonical payload+flag
    // idiom must come out hazard-free.
    cluster.set_span_tracing(true);
    let payload = MemRef::host(0, 0x4000_0000);
    let flag_src = MemRef::host(0, 0x4800_0000);
    let dst = MemRef::host(1, 0x5000_0000);
    let flag_dst = MemRef::host(1, 0x5800_0000);
    cluster.write(&payload, &[0xabu8; 4096]);
    cluster.write(&flag_src, &1u64.to_le_bytes());
    cluster.memcpy_peer(&dst, &payload, 4096);
    cluster.memcpy_peer(&flag_dst, &flag_src, 8);
    // The write log records node-local DRAM addresses, so the flag range
    // is the consumer-side flag word's local address.
    rep.extend(tca::verify::detect_hazards(
        cluster.fabric.spans(),
        &[AddrRange::new(0x5800_0000, 8)],
    ));

    // The descriptor chains the drivers program for a node 0 → node 1 put,
    // on both engines.
    let drv = cluster.drivers[0];
    let remote = cluster.sub.map.block(1, tca::device::TcaBlock::Host).base() + 0x5000_0000;
    for engine in [EngineKind::Pipelined, EngineKind::Legacy] {
        let cx = ChainContext {
            map: cluster.sub.map,
            node: 0,
            sram_size: cluster
                .fabric
                .device::<tca::peach2::Peach2>(cluster.sub.chips[0])
                .params()
                .sram_size,
            local: vec![AddrRange::new(0, 1 << 32)],
            engine,
        };
        let descs = match engine {
            EngineKind::Pipelined => vec![Descriptor::new(drv.dma_buf, remote, 4096)],
            EngineKind::Legacy => vec![Descriptor::new(drv.sram_addr(0), remote, 4096)],
        };
        rep.extend(lint_chain(&cx, &descs));
    }
    // Re-run the runtime-echo pass now that traffic has moved.
    rep.extend(tca::verify::runtime_diagnostics(
        &cluster.fabric,
        &cluster.sub,
    ));
    rep
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut json = false;
    let mut only: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all-presets" => only = None,
            "--deny" if args.get(i + 1).map(String::as_str) == Some("warnings") => {
                deny_warnings = true;
                i += 1;
            }
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--preset" => {
                only = args.get(i + 1).cloned();
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: tca-verify [--all-presets] [--preset NAME] [--deny warnings] [--json]\n\
                     presets: {}",
                    PRESETS
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tca-verify: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    // No selection means everything, same as --all-presets.
    let mut failed = false;
    let mut matched = false;
    for p in PRESETS {
        if let Some(name) = &only {
            if p.name != *name {
                continue;
            }
        }
        matched = true;
        let rep = check_preset(p);
        if json {
            println!("{{\"preset\":\"{}\",\"report\":{}}}", p.name, rep.to_json());
        } else if rep.is_clean() {
            println!("{}: clean", p.name);
        } else {
            print!("{}:\n{}", p.name, rep.render());
        }
        if rep.fails(deny_warnings) {
            failed = true;
        }
    }
    if !matched {
        eprintln!("tca-verify: no preset matched (try --help)");
        return ExitCode::FAILURE;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
