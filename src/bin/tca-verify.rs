//! `tca-verify` — lint every shipped cluster preset, hazard-check a
//! traced reference workload on each, and statically prove every registry
//! topology deadlock-free and route-complete.
//!
//! ```text
//! tca-verify --all-presets --deny warnings        # the CI gate
//! tca-verify --preset ring-4 --json               # one preset, JSON out
//! tca-verify --topo torus3d-4x4x4                 # one registry topology
//! tca-verify --topo-file my.topo                  # a .topo file on disk
//! tca-verify --topo ring-8 --cdg-dot              # Graphviz CDG export
//! tca-verify --emit-topo torus2d-8x8              # print the .topo text
//! ```
//!
//! Exit status is 0 when every selected preset/topology is clean (or
//! carries only warnings without `--deny warnings`), 1 otherwise. Output
//! is fully deterministic: two runs of the same binary print identical
//! bytes.

use std::process::ExitCode;
use tca::core::prelude::*;
use tca::core::presets::{build_topology, topology_registry};
use tca::pcie::AddrRange;
use tca::peach2::TopoSpec;
use tca::verify::{lint_chain, lint_topo, ChainContext, DiagSpan, Diagnostic, Report};

/// One shipped configuration the gate covers.
struct Preset {
    name: &'static str,
    build: fn() -> TcaCluster,
}

const PRESETS: &[Preset] = &[
    Preset {
        name: "ring-2",
        build: || TcaClusterBuilder::new(2).build(),
    },
    Preset {
        name: "ring-4",
        build: || TcaClusterBuilder::new(4).build(),
    },
    Preset {
        name: "ring-8",
        build: || TcaClusterBuilder::new(8).build(),
    },
    Preset {
        name: "ring-16",
        build: || TcaClusterBuilder::new(16).build(),
    },
    Preset {
        name: "dual-ring-4",
        build: || {
            TcaClusterBuilder::new(4)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "dual-ring-8",
        build: || {
            TcaClusterBuilder::new(8)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "dual-ring-16",
        build: || {
            TcaClusterBuilder::new(16)
                .topology(Topology::DualRing)
                .build()
        },
    },
    Preset {
        name: "ring-4+ib",
        build: || {
            TcaClusterBuilder::new(4)
                .with_infiniband(IbParams::default())
                .build()
        },
    },
];

/// Static lint + a traced reference workload (payload puts then a flag
/// put, node 0 → node 1) fed to the hazard detector, plus a lint of the
/// descriptor chains the drivers would actually program.
fn check_preset(p: &Preset) -> Report {
    let mut cluster = (p.build)();
    let mut rep = cluster.verify();

    // Reference workload under span tracing: the canonical payload+flag
    // idiom must come out hazard-free.
    cluster.set_span_tracing(true);
    let payload = MemRef::host(0, 0x4000_0000);
    let flag_src = MemRef::host(0, 0x4800_0000);
    let dst = MemRef::host(1, 0x5000_0000);
    let flag_dst = MemRef::host(1, 0x5800_0000);
    cluster.write(&payload, &[0xabu8; 4096]);
    cluster.write(&flag_src, &1u64.to_le_bytes());
    cluster.memcpy_peer(&dst, &payload, 4096);
    cluster.memcpy_peer(&flag_dst, &flag_src, 8);
    // The write log records node-local DRAM addresses, so the flag range
    // is the consumer-side flag word's local address.
    rep.extend(tca::verify::detect_hazards(
        cluster.fabric.spans(),
        &[AddrRange::new(0x5800_0000, 8)],
    ));

    // The descriptor chains the drivers program for a node 0 → node 1 put,
    // on both engines.
    let drv = cluster.drivers[0];
    let remote = cluster.sub.map.block(1, tca::device::TcaBlock::Host).base() + 0x5000_0000;
    for engine in [EngineKind::Pipelined, EngineKind::Legacy] {
        let cx = ChainContext {
            map: cluster.sub.map,
            node: 0,
            sram_size: cluster
                .fabric
                .device::<tca::peach2::Peach2>(cluster.sub.chips[0])
                .params()
                .sram_size,
            local: vec![AddrRange::new(0, 1 << 32)],
            engine,
        };
        let descs = match engine {
            EngineKind::Pipelined => vec![Descriptor::new(drv.dma_buf, remote, 4096)],
            EngineKind::Legacy => vec![Descriptor::new(drv.sram_addr(0), remote, 4096)],
        };
        rep.extend(lint_chain(&cx, &descs));
    }
    // Re-run the runtime-echo pass now that traffic has moved.
    rep.extend(tca::verify::runtime_diagnostics(
        &cluster.fabric,
        &cluster.sub,
    ));
    rep
}

/// The static proof for one declarative topology, optionally emitting the
/// CDG as Graphviz instead of the report text.
fn report_topo(label: &str, spec: &TopoSpec, json: bool, dot: bool) -> Report {
    let rep = lint_topo(spec);
    if dot {
        let an = tca::verify::analyze(spec);
        print!("{}", tca::verify::cdg_dot(spec, &an.cdg));
    } else if json {
        println!("{{\"topology\":\"{label}\",\"report\":{}}}", rep.to_json());
    } else if rep.is_clean() {
        println!("topo:{label}: clean");
    } else {
        print!("topo:{label}:\n{}", rep.render());
    }
    rep
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut json = false;
    let mut dot = false;
    let mut only_preset: Option<String> = None;
    let mut only_topo: Option<String> = None;
    let mut topo_files: Vec<String> = Vec::new();
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all-presets" => all = true,
            "--deny" if args.get(i + 1).map(String::as_str) == Some("warnings") => {
                deny_warnings = true;
                i += 1;
            }
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--cdg-dot" => dot = true,
            "--preset" => {
                only_preset = args.get(i + 1).cloned();
                i += 1;
            }
            "--topo" => {
                only_topo = args.get(i + 1).cloned();
                i += 1;
            }
            "--topo-file" => {
                let Some(path) = args.get(i + 1).cloned() else {
                    eprintln!("tca-verify: --topo-file needs a path");
                    return ExitCode::FAILURE;
                };
                topo_files.push(path);
                i += 1;
            }
            "--emit-topo" => {
                let Some(spec) = args.get(i + 1).and_then(|n| build_topology(n)) else {
                    eprintln!("tca-verify: --emit-topo needs a topology name (try --help)");
                    return ExitCode::FAILURE;
                };
                print!("{}", spec.to_text());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: tca-verify [--all-presets] [--preset NAME] [--topo NAME]\n\
                     \x20                 [--topo-file PATH] [--emit-topo NAME] [--cdg-dot]\n\
                     \x20                 [--deny warnings] [--json]\n\
                     presets: {}\n\
                     topologies: {}",
                    PRESETS
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", "),
                    topology_registry()
                        .iter()
                        .map(|t| t.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tca-verify: unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    // No explicit selection means everything, same as --all-presets.
    if only_preset.is_none() && only_topo.is_none() && topo_files.is_empty() {
        all = true;
    }
    let mut failed = false;
    let mut matched = false;
    if only_topo.is_none() && topo_files.is_empty() {
        for p in PRESETS {
            if !all && only_preset.as_deref() != Some(p.name) {
                continue;
            }
            matched = true;
            let rep = check_preset(p);
            if json {
                println!("{{\"preset\":\"{}\",\"report\":{}}}", p.name, rep.to_json());
            } else if rep.is_clean() {
                println!("{}: clean", p.name);
            } else {
                print!("{}:\n{}", p.name, rep.render());
            }
            if rep.fails(deny_warnings) {
                failed = true;
            }
        }
    }
    if only_preset.is_none() && topo_files.is_empty() {
        for entry in topology_registry() {
            if !all && only_topo.as_deref() != Some(entry.name) {
                continue;
            }
            matched = true;
            let spec = (entry.build)();
            if report_topo(entry.name, &spec, json, dot).fails(deny_warnings) {
                failed = true;
            }
        }
        if let Some(name) = &only_topo {
            if !matched {
                // Not in the registry: accept the parametric generator
                // grammar (ring-N, torus2d-WxH, ...) for ad-hoc sizes.
                let Some(spec) = build_topology(name) else {
                    eprintln!("tca-verify: no topology named {name:?} (try --help)");
                    return ExitCode::FAILURE;
                };
                matched = true;
                if report_topo(name, &spec, json, dot).fails(deny_warnings) {
                    failed = true;
                }
            }
        }
    }
    for path in &topo_files {
        matched = true;
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tca-verify: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match TopoSpec::parse(&text) {
            Ok(spec) => {
                if report_topo(path, &spec, json, dot).fails(deny_warnings) {
                    failed = true;
                }
            }
            Err(e) => {
                let mut rep = Report::new();
                rep.extend(vec![Diagnostic::error(
                    "TCA-T001",
                    DiagSpan::fabric(format!("{path}:{}", e.line)),
                    format!("topology file does not parse: {}", e.message),
                    "fix the line; see `tca-verify --emit-topo <name>` for a reference file",
                )]);
                if json {
                    println!("{{\"topology\":\"{path}\",\"report\":{}}}", rep.to_json());
                } else {
                    print!("topo:{path}:\n{}", rep.render());
                }
                failed = true;
            }
        }
    }
    if !matched {
        eprintln!("tca-verify: nothing selected (try --help)");
        return ExitCode::FAILURE;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
