//! `tca` — facade crate for the TCA / PEACH2 reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can `use tca::...`.

#![forbid(unsafe_code)]

pub use tca_apps as apps;
pub use tca_core as core;
pub use tca_device as device;
pub use tca_net as net;
pub use tca_pcie as pcie;
pub use tca_peach2 as peach2;
pub use tca_sim as sim;
pub use tca_verify as verify;

/// Re-export of the most commonly used items.
pub mod prelude {
    pub use tca_core::prelude::*;
}
