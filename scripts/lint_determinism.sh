#!/usr/bin/env bash
# Determinism lint: simulation code must never consult wall-clock time or
# OS entropy — a single call would silently break bit-identical replay,
# run-to-run flight-log comparison, and the jobs-invariance guarantee of
# the parallel sweep runner.
#
# Scans every crate in the workspace. The only allowlisted file is the
# host-side wall-clock profiler, which measures *simulator* speed (ns/event
# on the host) and is observationally neutral to simulated time by
# construction (asserted by the tca-prof CI smoke).
#
# (`TraceKind::Instant` is a span event name, hence the precise patterns
# rather than a bare "Instant".)
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=(
    'crates/bench/src/prof.rs'
)

pattern='std::time::(Instant|SystemTime)|Instant::now|SystemTime::now|thread_rng|rand::random|from_entropy'

hits=$(grep -rnE "$pattern" crates/*/src src --include='*.rs' || true)
for allowed in "${ALLOWLIST[@]}"; do
    hits=$(printf '%s' "$hits" | grep -v "^$allowed:" || true)
done

if [[ -n "$hits" ]]; then
    echo "determinism lint: wall-clock or OS-entropy use in simulation sources:" >&2
    printf '%s\n' "$hits" >&2
    exit 1
fi
