#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Everything runs --offline against the vendored stub crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline
