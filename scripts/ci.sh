#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Everything runs --offline against the vendored stub crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline --workspace --bins
cargo build --release --offline
cargo test -q --offline

# Scenario-runner smoke: the registry lists, a TCA-only sweep and a
# backend-aware sweep both run, and the parallel runner emits the same
# bytes at --jobs 1 and --jobs 4 (full jobs-invariance is also asserted by
# tests/determinism.rs).
cargo run -q --release --offline -p tca-bench --bin tca-bench -- --list > /dev/null
one=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario put-latency --backend mpi --json --jobs 1)
four=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario put-latency --backend mpi --json --jobs 4)
if [[ "$one" != "$four" ]]; then
    echo "tca-bench smoke: sweep JSON differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi

# Fabric-health smoke: run the tca-top report with the stall watchdog
# armed. A healthy ping-pong must never trip the watchdog, and the report
# schema is pinned — drift here breaks downstream dashboard consumers.
top=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario pingpong --top --json)
if [[ "$top" != '{"schema":"tca-health/v1"'* ]]; then
    echo "tca-top smoke: health report schema drifted" >&2
    exit 1
fi
if [[ "$top" != *'"watchdog_armed":true'* || "$top" == *'"watchdog_fired":true'* ]]; then
    echo "tca-top smoke: stall watchdog fired on a healthy ping-pong" >&2
    exit 1
fi
if [[ "$top" != *'"links":{'* || "$top" != *'"latency":{'* ]]; then
    echo "tca-top smoke: health report is missing link or latency sections" >&2
    exit 1
fi

# Configuration-verifier gate: statically lint every shipped preset
# (address windows, routing cycles, credit sufficiency, descriptor chains),
# hazard-check a traced reference workload on each, and prove every
# registry topology deadlock-free (CDG acyclicity) and route-complete.
# Deny-by-default: even a warning fails the build.
cargo run -q --release --offline --bin tca-verify -- --all-presets --deny warnings

# Topology-file gates: the checked-in clean fixture must prove out, and the
# intentionally cycle-injected fixture must fail with the CDG cycle code —
# if it ever passes, the prover has lost its teeth.
cargo run -q --release --offline --bin tca-verify -- \
    --topo-file configs/topologies/torus2d-3x3.topo --deny warnings
if broken=$(cargo run -q --release --offline --bin tca-verify -- \
    --topo-file configs/topologies/cycle-injected.topo 2>&1); then
    echo "tca-verify gate: cycle-injected fixture passed the prover" >&2
    exit 1
fi
if [[ "$broken" != *"TCA-R002"* ]]; then
    echo "tca-verify gate: cycle-injected fixture failed without TCA-R002" >&2
    echo "$broken" >&2
    exit 1
fi

# Determinism lint: the simulation crates must never consult wall-clock
# time or OS entropy — a single call would silently break bit-identical
# replay. Allowlist and patterns live in the script.
bash scripts/lint_determinism.sh

# Unsafe audit: every simulation crate forbids `unsafe` outright; tca-sim
# alone carries a documented deny + one feature-gated exception (the
# counting allocator in prof.rs). Any other unsafe token fails the build.
for lib in crates/apps crates/bench crates/core crates/device crates/net \
    crates/pcie crates/peach2 crates/verify; do
    if ! grep -q '^#!\[forbid(unsafe_code)\]' "$lib/src/lib.rs"; then
        echo "unsafe audit: $lib/src/lib.rs lost #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done
if ! grep -q 'cfg_attr(not(feature = "host-prof"), forbid(unsafe_code))' crates/sim/src/lib.rs ||
    ! grep -q '^#!\[deny(unsafe_code)\]' crates/sim/src/lib.rs; then
    echo "unsafe audit: crates/sim/src/lib.rs lost its deny/forbid pair" >&2
    exit 1
fi
if grep -rn 'unsafe fn\|unsafe impl\|unsafe {' crates/*/src src \
    --include='*.rs' | grep -v '^crates/sim/src/prof\.rs:'; then
    echo "unsafe audit: unsafe token outside the allowlisted crates/sim/src/prof.rs" >&2
    exit 1
fi

# Profile-neutrality smoke (tca-prof): --profile must be observationally
# neutral. Both stdout (health report, sweep JSON) and the on-disk trace +
# health artifacts must be byte-identical with and without it; the profile
# artifacts themselves go to separate files and stderr notices only.
profdir=$(mktemp -d)
trap 'rm -rf "$profdir"' EXIT
top_plain=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario pingpong --top --json --telemetry-dir "$profdir/plain" 2> /dev/null)
top_prof=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario pingpong --top --json --telemetry-dir "$profdir/prof" \
    --profile --profile-dir "$profdir/out" 2> /dev/null)
if [[ "$top_plain" != "$top_prof" ]]; then
    echo "tca-prof smoke: --profile changed the tca-top stdout" >&2
    exit 1
fi
if ! diff -r "$profdir/plain" "$profdir/prof" > /dev/null; then
    echo "tca-prof smoke: --profile changed the trace/health artifacts" >&2
    exit 1
fi
if [[ ! -s "$profdir/out/PROF_pingpong.json" || ! -s "$profdir/out/PROF_pingpong.folded" ]]; then
    echo "tca-prof smoke: --profile did not write the PROF artifacts" >&2
    exit 1
fi
sweep_plain=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario put-latency --json)
sweep_prof=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario put-latency --json --profile --profile-dir "$profdir/out" 2> /dev/null)
if [[ "$sweep_plain" != "$sweep_prof" ]]; then
    echo "tca-prof smoke: --profile changed the sweep JSON" >&2
    exit 1
fi

# Flight-recorder smoke (tca-flight): recording the 8-node ring twice must
# produce byte-identical logs that the divergence engine confirms as zero
# findings, and a single corrupted byte must be caught with a TCA-X code
# and a non-zero exit.
flightdir="$profdir/flight"
top_fl=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario ring-hops --top --json --telemetry-dir "$profdir/tel_fl" \
    --flight-dir "$flightdir/a" 2> /dev/null)
cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario ring-hops --top --flight-dir "$flightdir/b" > /dev/null 2>&1
log_a="$flightdir/a/FLIGHT_ring-hops-tca.jsonl"
log_b="$flightdir/b/FLIGHT_ring-hops-tca.jsonl"
if ! cmp -s "$log_a" "$log_b"; then
    echo "tca-flight smoke: two identical runs recorded different logs" >&2
    exit 1
fi
if ! cargo run -q --release --offline -p tca-bench --bin tca-flight -- \
    diff "$log_a" "$log_b" > /dev/null; then
    echo "tca-flight smoke: diff found divergences between identical runs" >&2
    exit 1
fi
# Engine-equivalence gate: the timing-wheel rewrite must not move a single
# event. The ring-hops flight log just recorded is held against the
# pre-rewrite golden checked in at configs/flight/ring-hops.golden.jsonl —
# first byte-for-byte, then through the divergence engine so any drift is
# reported with a TCA-X code and the first divergent record.
golden=configs/flight/ring-hops.golden.jsonl
if ! cmp -s "$golden" "$log_a"; then
    echo "engine equivalence: ring-hops flight log drifted from the golden" >&2
    cargo run -q --release --offline -p tca-bench --bin tca-flight -- \
        diff "$golden" "$log_a" >&2 || true
    exit 1
fi
if ! cargo run -q --release --offline -p tca-bench --bin tca-flight -- \
    diff "$golden" "$log_a" > /dev/null; then
    echo "engine equivalence: divergence engine flagged the golden comparison" >&2
    exit 1
fi

sed '2s/deliver/deliXer/' "$log_a" > "$flightdir/corrupt.jsonl"
if flight_out=$(cargo run -q --release --offline -p tca-bench --bin tca-flight -- \
    diff "$log_a" "$flightdir/corrupt.jsonl" 2>&1); then
    echo "tca-flight smoke: diff missed a corrupted byte" >&2
    exit 1
fi
if [[ "$flight_out" != *"TCA-X"* ]]; then
    echo "tca-flight smoke: corruption report carries no TCA-X code" >&2
    echo "$flight_out" >&2
    exit 1
fi

# Flight-neutrality smoke: recording must be a pure observer. The tca-top
# stdout and the on-disk health/series/trace artifacts of the same
# instrumented run must be byte-identical with and without --flight-dir.
top_nofl=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario ring-hops --top --json --telemetry-dir "$profdir/tel_nofl" 2> /dev/null)
if [[ "$top_fl" != "$top_nofl" ]]; then
    echo "tca-flight smoke: --flight-dir changed the tca-top stdout" >&2
    exit 1
fi
if ! diff -r "$profdir/tel_fl" "$profdir/tel_nofl" > /dev/null; then
    echo "tca-flight smoke: --flight-dir changed the trace/health artifacts" >&2
    exit 1
fi

# Perf-regression gate: rerun the fabric kernels (ping-pong, hop sweep,
# Fig. 7/8/9 bandwidth), write the schema-stable results/BENCH_fabric.json,
# and fail the build if any metric drifts outside its paper-anchored bound.
cargo run -q --release --offline -p tca-bench --bin bench_regression

# Engine-throughput gate: drive the fixed 8-node-ring steady-state workload
# plus the ring-size sweep under the counting allocator, race the timing
# wheel against the pre-rewrite reference heap (>= 2x speedup required,
# identical pop-stream checksums), run the 256-node torus2d-16x16
# all-to-all point (~1M events), write the schema-stable
# results/BENCH_engine.json, and fail the build if host events/sec,
# ns/event, allocs/event, or peak pending drifts outside its bound — same
# contract as BENCH_fabric.json, but for simulator speed.
cargo run -q --release --offline -p tca-bench --bin bench_engine

# BENCH-artifact neutrality under flight recording: re-run both gates with
# the TCA_FLIGHT_RING env gate enabling a 4096-slot recorder inside every
# backend rig. BENCH_fabric.json is fully deterministic, so it must come
# back byte-identical; BENCH_engine.json mixes wall-clock fields that vary
# run-to-run with sim-side counters, so only the deterministic fields are
# compared (events, heap depth, queue/dispatch/TLP counters).
cp results/BENCH_fabric.json "$profdir/fabric_plain.json"
cp results/BENCH_engine.json "$profdir/engine_plain.json"
TCA_FLIGHT_RING=4096 cargo run -q --release --offline -p tca-bench --bin bench_regression
TCA_FLIGHT_RING=4096 cargo run -q --release --offline -p tca-bench --bin bench_engine
if ! diff results/BENCH_fabric.json "$profdir/fabric_plain.json" > /dev/null; then
    echo "tca-flight smoke: recording changed BENCH_fabric.json" >&2
    exit 1
fi
sim_fields() {
    grep -oE '"(events|peak_pending|pushes|pops|cancels|cascades|deliver_events|timer_events|credit_return_events|tlp_transmits|constructed|cloned|relay_hops|nodes|messages|sim_ps)":[0-9]+' "$1"
    grep -oE '"checksum":"[0-9a-f]+"' "$1"
}
if [[ "$(sim_fields results/BENCH_engine.json)" != "$(sim_fields "$profdir/engine_plain.json")" ]]; then
    echo "tca-flight smoke: recording changed BENCH_engine.json sim-side counters" >&2
    exit 1
fi
# Restore the unrecorded artifacts so the checked-in results/ stay canonical.
cp "$profdir/fabric_plain.json" results/BENCH_fabric.json
cp "$profdir/engine_plain.json" results/BENCH_engine.json

# What-if smoke (tca-whatif): the causal profiler must be deterministic,
# schema-stable, and observationally neutral. Running the small-ring sweep
# twice must produce byte-identical artifacts; the report JSON is pinned to
# the tca-whatif/v1 schema; and --whatif-dir riding along on a --top run
# must change neither the stdout nor the checked-in BENCH_fabric.json.
wadir="$profdir/whatif"
cargo run -q --release --offline -p tca-bench --bin tca-whatif -- \
    --scenario ring-hops --out "$wadir/a" > /dev/null 2>&1
cargo run -q --release --offline -p tca-bench --bin tca-whatif -- \
    --scenario ring-hops --out "$wadir/b" > /dev/null 2>&1
for art in WHATIF_ring-hops.json WHATIF_ring-hops.folded.diff; do
    if ! cmp -s "$wadir/a/$art" "$wadir/b/$art"; then
        echo "tca-whatif smoke: two identical sweeps produced different $art" >&2
        exit 1
    fi
done
wa_json=$(cat "$wadir/a/WHATIF_ring-hops.json")
if [[ "$wa_json" != '{"schema":"tca-whatif/v1"'* ]]; then
    echo "tca-whatif smoke: report schema drifted" >&2
    exit 1
fi
if [[ "$wa_json" != *'"config_fnv":"'* || "$wa_json" != *'"interaction":'* ]]; then
    echo "tca-whatif smoke: report is missing config_fnv or interaction probe" >&2
    exit 1
fi
cp results/BENCH_fabric.json "$profdir/fabric_pre_whatif.json"
top_nowa=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario ring-hops --top --json 2> /dev/null)
top_wa=$(cargo run -q --release --offline -p tca-bench --bin tca-bench -- \
    --scenario ring-hops --top --json --whatif-dir "$wadir/neutral" 2> /dev/null)
if [[ "$top_nowa" != "$top_wa" ]]; then
    echo "tca-whatif smoke: --whatif-dir changed the tca-top stdout" >&2
    exit 1
fi
if [[ ! -s "$wadir/neutral/WHATIF_ring-hops.json" ]]; then
    echo "tca-whatif smoke: --whatif-dir did not write the WHATIF artifacts" >&2
    exit 1
fi
if ! cmp -s results/BENCH_fabric.json "$profdir/fabric_pre_whatif.json"; then
    echo "tca-whatif smoke: the whatif sweep perturbed BENCH_fabric.json" >&2
    exit 1
fi
# The health report must carry the config fingerprint of the parameter
# registry the whatif sweep introspects (tca-health/v1 second key).
if [[ "$top_nowa" != '{"schema":"tca-health/v1","config_fnv":"'* ]]; then
    echo "tca-whatif smoke: health report lost its config_fnv stamp" >&2
    exit 1
fi
