#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, release build, full test suite.
# Everything runs --offline against the vendored stub crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline
cargo test -q --offline

# Perf-regression gate: rerun the fabric kernels (ping-pong, hop sweep,
# Fig. 7/8/9 bandwidth), write the schema-stable results/BENCH_fabric.json,
# and fail the build if any metric drifts outside its paper-anchored bound.
cargo run -q --release --offline -p tca-bench --bin bench_regression
