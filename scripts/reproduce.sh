#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations,
# saving text outputs to results/ alongside the JSON export.
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-results}
mkdir -p "$out"

bins=(tables fig7 fig8 fig9 fig12 latency ablation_qpi ablation_dmac \
      ablation_pearl ring_hops comparison contention hierarchy scaling apps \
      telemetry latency_attrib)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run -q --release -p tca-bench --bin "$b" | tee "$out/$b.txt"
    echo
done
cargo run -q --release -p tca-bench --bin export "$out/json"

# Schema-stable perf-regression report (byte-identical across runs), with
# every metric validated against its paper-anchored bound.
echo "== bench_regression =="
cargo run -q --release -p tca-bench --bin bench_regression "$out/BENCH_fabric.json"
echo "all outputs under $out/"
