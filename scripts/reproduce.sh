#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations,
# saving text outputs to results/ alongside the JSON export.
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-results}
mkdir -p "$out"

# Figure/ablation sweeps run through the unified scenario runner; each
# sweep point is an independent simulation, so --jobs parallelism cannot
# perturb any measurement (output is byte-identical at any job count).
scenarios=(fig7 fig8 fig9 fig12 latency ring-hops scaling contention \
           comparison ablation-dmac ablation-qpi ablation-pearl \
           put-latency cg stencil stencil2d nbody)
jobs=${JOBS:-4}
for s in "${scenarios[@]}"; do
    echo "== $s =="
    cargo run -q --release -p tca-bench --bin tca-bench -- \
        --scenario "$s" --jobs "$jobs" | tee "$out/$s.txt"
    echo
done

# Backend comparison: the application kernels again, over the MPI/IB
# baseline paths (same numerics, different clock — the paper's §I claim).
for s in cg stencil nbody; do
    for backend in mpi mpi-gpudirect; do
        echo "== $s ($backend) =="
        cargo run -q --release -p tca-bench --bin tca-bench -- \
            --scenario "$s" --backend "$backend" --jobs "$jobs" \
            | tee "$out/$s-$backend.txt"
        echo
    done
done

# Remaining standalone reports (multi-rig or artifact-writing).
bins=(tables hierarchy telemetry latency_attrib trace_pio)
for b in "${bins[@]}"; do
    echo "== $b =="
    cargo run -q --release -p tca-bench --bin "$b" | tee "$out/$b.txt"
    echo
done
cargo run -q --release -p tca-bench --bin export "$out/json"

# Schema-stable perf-regression report (byte-identical across runs), with
# every metric validated against its paper-anchored bound.
echo "== bench_regression =="
cargo run -q --release -p tca-bench --bin bench_regression "$out/BENCH_fabric.json"
echo "all outputs under $out/"
