//! Distributed Conjugate Gradient on the TCA sub-cluster — the lattice-
//! QCD-shaped workload HA-PACS exists for: halo cells travel as 8-byte
//! PIO puts, dot products as sub-microsecond ring allreduces, and no MPI
//! is anywhere in the stack.
//!
//! Run with: `cargo run --release --example cg_solver`

use tca::apps::cg_solve;
use tca::prelude::*;

fn main() {
    for nodes in [2u32, 4, 8] {
        let mut cluster = TcaClusterBuilder::new(nodes).build();
        let rep = cg_solve(&mut cluster, 64, 1e-10, 1000);
        println!(
            "{nodes} nodes x 64 unknowns: converged in {} iterations, \
             residual {:.2e}, error vs direct solve {:.2e}",
            rep.iterations, rep.residual, rep.max_error
        );
        println!(
            "  simulated comm time {} ({} per iteration)",
            rep.comm_time,
            rep.comm_time / rep.iterations.max(1) as u64
        );
        assert!(rep.max_error < 1e-6);
    }
    println!("\nall solves verified against the Thomas-algorithm reference");
}
