//! Ring allreduce over the TCA sub-cluster — the collective pattern of
//! data-parallel workloads, built directly on `tcaMemcpyPeer` puts with no
//! MPI underneath (§III-H / §V: "applications on the TCA sub-cluster do
//! not rely on the MPI software stack").
//!
//! Classic two-phase ring algorithm over host buffers: reduce-scatter
//! (each step ships one chunk to the next node, which accumulates), then
//! allgather (the reduced chunks circulate). Communication is the
//! simulated fabric; the additions stand in for host/GPU compute.
//!
//! Run with: `cargo run --release --example ring_allreduce`

use tca::prelude::*;

const NODES: u32 = 8;
const ELEMS: usize = 4096; // f64 per node

const DATA: u64 = 0x4000_0000; // working vector
const RECV: u64 = 0x4800_0000; // landing zone for the incoming chunk

fn read_f64s(c: &TcaCluster, m: &MemRef, n: usize) -> Vec<f64> {
    c.read(m, n * 8)
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
        .collect()
}

fn write_f64s(c: &mut TcaCluster, m: &MemRef, v: &[f64]) {
    let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
    c.write(m, &bytes);
}

fn main() {
    assert_eq!(ELEMS % NODES as usize, 0);
    let chunk = ELEMS / NODES as usize;
    let chunk_bytes = (chunk * 8) as u64;
    let n = NODES as usize;

    let mut cluster = TcaClusterBuilder::new(NODES).build();

    // Every node starts with its own vector; the expected allreduce result
    // is the element-wise sum.
    let mut expect = vec![0.0f64; ELEMS];
    for node in 0..n {
        let v: Vec<f64> = (0..ELEMS)
            .map(|i| ((node * 1009 + i * 31) % 97) as f64)
            .collect();
        for (e, x) in expect.iter_mut().zip(&v) {
            *e += x;
        }
        write_f64s(&mut cluster, &MemRef::host(node as u32, DATA), &v);
    }

    let t0 = cluster.now();

    // --- Phase 1: reduce-scatter. In step s, node i sends chunk
    // (i - s) mod n to node i+1, which adds it into its copy.
    for s in 0..n - 1 {
        let events: Vec<TcaEvent> = (0..n)
            .map(|i| {
                let c_idx = (i + n - s) % n;
                let dst = (i + 1) % n;
                cluster.memcpy_peer_async(
                    &MemRef::host(dst as u32, RECV),
                    &MemRef::host(i as u32, DATA + (c_idx * chunk) as u64 * 8),
                    chunk_bytes,
                )
            })
            .collect();
        for ev in events {
            cluster.wait(ev);
        }
        cluster.synchronize();
        // Accumulate the received chunk (compute stand-in).
        for i in 0..n {
            let c_idx = (i + n - 1 - s) % n;
            let own = MemRef::host(i as u32, DATA + (c_idx * chunk) as u64 * 8);
            let mut acc = read_f64s(&cluster, &own, chunk);
            let inc = read_f64s(&cluster, &MemRef::host(i as u32, RECV), chunk);
            for (a, b) in acc.iter_mut().zip(&inc) {
                *a += b;
            }
            write_f64s(&mut cluster, &own, &acc);
        }
    }

    // --- Phase 2: allgather. Node i owns the fully reduced chunk
    // (i + 1) mod n; circulate the reduced chunks around the ring.
    for s in 0..n - 1 {
        let events: Vec<TcaEvent> = (0..n)
            .map(|i| {
                let c_idx = (i + 1 + n - s) % n;
                let dst = (i + 1) % n;
                cluster.memcpy_peer_async(
                    &MemRef::host(dst as u32, DATA + (c_idx * chunk) as u64 * 8),
                    &MemRef::host(i as u32, DATA + (c_idx * chunk) as u64 * 8),
                    chunk_bytes,
                )
            })
            .collect();
        for ev in events {
            cluster.wait(ev);
        }
        cluster.synchronize();
    }

    let elapsed = cluster.now().since(t0);

    // Verify every node holds the global sum.
    for node in 0..n {
        let got = read_f64s(&cluster, &MemRef::host(node as u32, DATA), ELEMS);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() < 1e-9,
                "node {node} elem {i}: got {g}, expected {e}"
            );
        }
    }
    let bytes_moved = 2 * (n - 1) * chunk * 8 * n;
    println!(
        "allreduce of {ELEMS} f64 across {NODES} nodes: {elapsed} \
         ({:.3} GB/s aggregate ring bandwidth)",
        bytes_moved as f64 / elapsed.as_s_f64() / 1e9
    );
    println!("all {NODES} nodes hold the exact global sum: OK");
}
