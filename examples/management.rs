//! The management plane: PEACH2's NIOS microcontroller (§III-D) watching
//! a live sub-cluster, plus the dynamic port-S role switch the paper
//! lists as future work.
//!
//! Run with: `cargo run --release --example management`

use tca::peach2::{Peach2, PortRole, PORT_S};
use tca::prelude::*;

fn main() {
    // A dual-ring of 8 nodes: two 4-rings coupled through port S.
    let mut cluster = TcaClusterBuilder::new(8)
        .topology(Topology::DualRing)
        .build();

    // Generate some cross-ring traffic (ring A node 1 → ring B node 6).
    for i in 0..8u64 {
        cluster.pio_put(1, &MemRef::host(6, 0x4000_0000 + i * 64), &[i as u8; 64]);
    }
    cluster.write(&MemRef::host(0, 0x4800_0000), &vec![3u8; 64 * 1024]);
    cluster.memcpy_peer(
        &MemRef::host(5, 0x5000_0000),
        &MemRef::host(0, 0x4800_0000),
        64 * 1024,
    );

    // Read the management status of every board.
    println!("== NIOS status across the sub-cluster ==");
    for (i, &chip) in cluster.sub.chips.iter().enumerate() {
        let c = cluster.fabric.device::<Peach2>(chip);
        let n = c.nios();
        println!(
            "node {i}: N in/out {}/{}  E {}/{}  W {}/{}  S {}/{}  relayed={} log={}",
            n.counters(0).ingress,
            n.counters(0).egress,
            n.counters(1).ingress,
            n.counters(1).egress,
            n.counters(2).ingress,
            n.counters(2).egress,
            n.counters(3).ingress,
            n.counters(3).egress,
            c.relayed.get(),
            n.log().len(),
        );
    }

    // Dynamic port-S reconfiguration on node 0 (partial FPGA reconfig:
    // the port is down for tens of milliseconds of simulated time).
    println!("\n== reconfiguring node 0 port S: RC -> EP ==");
    let chip0 = cluster.sub.chips[0];
    let t0 = cluster.now();
    cluster.fabric.drive::<Peach2, _>(chip0, |chip, ctx| {
        println!("  before: role={:?}", chip.nios().role(PORT_S.0));
        chip.reconfigure_port_s(PortRole::Endpoint, ctx);
    });
    cluster.fabric.run_until_idle();
    let took = cluster.now().since(t0);
    let c = cluster.fabric.device::<Peach2>(chip0);
    println!(
        "  after:  role={:?}  health={:?}  (took {took})",
        c.nios().role(PORT_S.0),
        c.nios().health(PORT_S.0)
    );

    // The cross-ring path through the reconfigured port works again.
    cluster.pio_put(0, &MemRef::host(4, 0x4200_0000), b"back online");
    assert_eq!(
        cluster.read(&MemRef::host(4, 0x4200_0000), 11),
        b"back online"
    );
    println!("\ncross-ring traffic through the reconfigured port: OK");
}
