//! Domain-decomposed Jacobi stencil with TCA halo exchange — the workload
//! class (particle physics, astrophysics, QCD-style stencils) that
//! HA-PACS/TCA was built for, and the reason the chaining DMAC supports
//! stride access (§III-D: "the stride access caused by multidimensional
//! array data").
//!
//! A 2-D grid is split row-wise across the GPUs of a 4-node ring. Each
//! iteration the boundary rows travel GPU-to-GPU through PEACH2 — no MPI,
//! no staging through host memory — then every node smooths its slab.
//! The result is verified against a single-domain reference.
//!
//! Run with: `cargo run --release --example halo_exchange`
#![allow(clippy::needless_range_loop)] // parallel-array numeric kernel

use tca::prelude::*;

const NODES: u32 = 4;
const COLS: usize = 128;
const ROWS_PER_NODE: usize = 32;
const ITERS: usize = 8;

type Grid = Vec<Vec<f64>>;

fn pack(row: &[f64]) -> Vec<u8> {
    row.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn unpack(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Row `r` of a node's slab in its GPU allocation (r = 0 is the top halo,
/// rows 1..=ROWS_PER_NODE are owned, ROWS_PER_NODE+1 is the bottom halo).
fn row_off(r: usize) -> u64 {
    (r * COLS * 8) as u64
}

fn main() {
    let total_rows = NODES as usize * ROWS_PER_NODE;
    // Reference grid with fixed boundary values.
    let mut reference: Grid = (0..total_rows + 2)
        .map(|r| (0..COLS).map(|c| ((r * 7 + c * 13) % 100) as f64).collect())
        .collect();

    let mut cluster = TcaClusterBuilder::new(NODES).build();
    let slabs: Vec<GpuAlloc> = (0..NODES)
        .map(|n| cluster.alloc_gpu(n, 0, ((ROWS_PER_NODE + 2) * COLS * 8) as u64))
        .collect();

    // Scatter: node n owns global rows [n*RPN, (n+1)*RPN), stored with a
    // halo row above and below.
    for n in 0..NODES as usize {
        for r in 0..ROWS_PER_NODE + 2 {
            let global = n * ROWS_PER_NODE + r; // reference row index
            cluster.write(&slabs[n].at(row_off(r)), &pack(&reference[global]));
        }
    }

    let row_bytes = (COLS * 8) as u64;
    let mut comm_time = Dur::ZERO;
    for _iter in 0..ITERS {
        // --- Halo exchange in two concurrent waves (each board runs one
        // DMA at a time, so upward puts fly together, then downward puts).
        let t0 = cluster.now();
        let up_wave: Vec<TcaEvent> = (1..NODES as usize)
            .map(|n| {
                // My first owned row becomes the upper neighbour's bottom halo.
                cluster.memcpy_peer_async(
                    &slabs[n - 1].at(row_off(ROWS_PER_NODE + 1)),
                    &slabs[n].at(row_off(1)),
                    row_bytes,
                )
            })
            .collect();
        for ev in up_wave {
            cluster.wait(ev);
        }
        let down_wave: Vec<TcaEvent> = (0..NODES as usize - 1)
            .map(|n| {
                // My last owned row becomes the lower neighbour's top halo.
                cluster.memcpy_peer_async(
                    &slabs[n + 1].at(row_off(0)),
                    &slabs[n].at(row_off(ROWS_PER_NODE)),
                    row_bytes,
                )
            })
            .collect();
        for ev in down_wave {
            cluster.wait(ev);
        }
        cluster.synchronize();
        comm_time += cluster.now().since(t0);

        // --- Local Jacobi smoothing (kernel stand-in).
        for n in 0..NODES as usize {
            let slab = unpack(&cluster.read(&slabs[n].at(0), (ROWS_PER_NODE + 2) * COLS * 8));
            let mut next = slab.clone();
            for r in 1..=ROWS_PER_NODE {
                for c in 1..COLS - 1 {
                    let i = r * COLS + c;
                    next[i] = 0.25 * (slab[i - COLS] + slab[i + COLS] + slab[i - 1] + slab[i + 1]);
                }
            }
            for r in 1..=ROWS_PER_NODE {
                cluster.write(
                    &slabs[n].at(row_off(r)),
                    &pack(&next[r * COLS..(r + 1) * COLS]),
                );
            }
        }

        // --- Reference smoothing over the whole grid.
        let prev = reference.clone();
        for (r, row) in reference.iter_mut().enumerate().skip(1).take(total_rows) {
            for c in 1..COLS - 1 {
                row[c] = 0.25 * (prev[r - 1][c] + prev[r + 1][c] + prev[r][c - 1] + prev[r][c + 1]);
            }
        }
    }

    // Gather and compare.
    let mut max_err = 0.0f64;
    for n in 0..NODES as usize {
        for r in 1..=ROWS_PER_NODE {
            let got = unpack(&cluster.read(&slabs[n].at(row_off(r)), COLS * 8));
            let global = n * ROWS_PER_NODE + r;
            for c in 1..COLS - 1 {
                max_err = max_err.max((got[c] - reference[global][c]).abs());
            }
        }
    }
    println!("{ITERS} Jacobi iterations on a {total_rows}x{COLS} grid across {NODES} GPUs");
    println!("halo-exchange time total: {comm_time}");
    println!("max error vs single-domain reference: {max_err:.3e}");
    assert!(max_err < 1e-12, "distributed result diverged");
    println!("distributed == reference: OK");
}
