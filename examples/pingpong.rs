//! Ping-pong latency shoot-out: TCA PIO vs TCA DMA vs MPI-over-InfiniBand
//! — the §I claim ("the latency caused by multiple memory copies severely
//! degrades the performance, especially in the case of a short message")
//! made measurable.
//!
//! Run with: `cargo run --release --example pingpong`

use tca::prelude::*;
use tca_device::HostBridge;
use tca_net::{attach_ib, MpiWorld};
use tca_pcie::Fabric;

fn tca_pingpong(msg: u64) -> (Dur, Dur) {
    let mut c = TcaClusterBuilder::new(2).build();
    let a = MemRef::host(0, 0x4000_0000);
    let b = MemRef::host(1, 0x4000_0000);
    let payload = vec![0x5au8; msg as usize];
    c.write(&a, &payload);

    // PIO ping-pong: store there, store back.
    let fwd = c.pio_put(0, &b, &payload);
    let back = c.pio_put(1, &a, &payload);
    let pio_half = (fwd + back) / 2;

    // DMA ping-pong (pipelined DMAC, doorbell→interrupt window each way).
    let fwd = c.memcpy_peer(&b, &a, msg);
    let back = c.memcpy_peer(&a, &b, msg);
    let dma_half = (fwd + back) / 2;
    (pio_half, dma_half)
}

fn mpi_pingpong(msg: u64) -> Dur {
    let mut f = Fabric::new();
    let mut nodes: Vec<_> = (0..2)
        .map(|i| {
            tca_device::node::build_node(
                &mut f,
                &format!("n{i}"),
                &tca_device::node::NodeConfig::default(),
            )
        })
        .collect();
    let net = attach_ib(&mut f, &mut nodes, IbParams::default());
    let mut w = MpiWorld::new(nodes, net);
    f.device_mut::<HostBridge>(w.nodes[0].host)
        .core_mut()
        .mem()
        .write(0x4000_0000, &vec![1u8; msg as usize]);
    let fwd = w.send(&mut f, 0, 1, 0x4000_0000, 0x5000_0000, msg, Protocol::Auto);
    let back = w.send(&mut f, 1, 0, 0x5000_0000, 0x4000_0000, msg, Protocol::Auto);
    (fwd + back) / 2
}

fn main() {
    println!("half round-trip latency, node0 <-> node1 host memory");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9}",
        "size", "TCA PIO", "TCA DMA", "MPI/IB", "PIO gain"
    );
    for msg in [4u64, 64, 256, 1024, 4096] {
        let (pio, dma) = tca_pingpong(msg);
        let mpi = mpi_pingpong(msg);
        println!(
            "{:>7}B {:>12} {:>12} {:>12} {:>8.1}x",
            msg,
            format!("{pio}"),
            format!("{dma}"),
            format!("{mpi}"),
            mpi.as_ns_f64() / pio.as_ns_f64()
        );
    }
    println!("\n(paper: PEACH2 one-way PIO = 782 ns; IB FDR < 1 us; MPI adds");
    println!(" protocol-stack and staging overhead that TCA eliminates, S I/S V)");
}
