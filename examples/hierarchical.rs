//! The full HA-PACS/TCA network hierarchy (§II-B): TCA sub-clusters for
//! low-latency local traffic, InfiniBand spanning everything for global
//! reach — with the tier chosen automatically per transfer.
//!
//! Run with: `cargo run --release --example hierarchical`

use tca::core::{HierarchicalCluster, Route};

fn main() {
    // The fall-2013 production shape (§VI): several dozen nodes, here as
    // two 8-node PEACH2 rings joined by the global IB fabric.
    let mut sys = HierarchicalCluster::build(2, 8);
    println!(
        "{} nodes: {} sub-clusters x {} (PEACH2 rings) + global InfiniBand\n",
        sys.total_nodes(),
        sys.subclusters.len(),
        8
    );

    // Seed a buffer on rank 2.
    let host = sys.mpi.nodes[2].host;
    sys.fabric
        .device_mut::<tca::device::HostBridge>(host)
        .core_mut()
        .mem()
        .write(0x4000_0000, &vec![0x2au8; 64 * 1024]);

    println!(
        "{:>12} {:>6} {:>14} {:>12}",
        "transfer", "size", "route", "time"
    );
    for (dst, len) in [(5u32, 64u64), (5, 64 * 1024), (12, 64), (12, 64 * 1024)] {
        let (route, t) = sys.send(
            2,
            dst,
            0x4000_0000,
            0x5000_0000 + dst as u64 * 0x10_0000,
            len,
        );
        println!(
            "{:>12} {:>6} {:>14} {:>12}",
            format!("2 -> {dst}"),
            len,
            match route {
                Route::Tca => "TCA (PEACH2)",
                Route::InfiniBand => "InfiniBand",
            },
            format!("{t}")
        );
    }

    println!("\nrank 2 -> 5 stays inside the sub-cluster (PIO/DMA through the ring);");
    println!("rank 2 -> 12 crosses sub-clusters and rides MPI over InfiniBand,");
    println!("exactly the two-tier design of S II-B.");
}
