//! Quickstart: build a TCA sub-cluster, move GPU data between nodes with
//! one call, and see why the architecture exists.
//!
//! Run with: `cargo run --release --example quickstart`

use tca::prelude::*;

fn main() {
    // A 4-node ring of Table II machines (Xeon E5 + K20 + PEACH2 boards),
    // cabled E<->W and routed with the Fig. 5 register scheme.
    let mut cluster = TcaClusterBuilder::new(4).build();

    // The CUDA flow, condensed: cuMemAlloc + cuPointerGetAttribute +
    // P2P-driver pin. After this, the buffers are plain PCIe addresses
    // visible to the whole sub-cluster.
    let src = cluster.alloc_gpu(0, 0, 1 << 20); // GPU0 on node 0
    let dst = cluster.alloc_gpu(2, 1, 1 << 20); // GPU1 on node 2

    // Produce data on node 0's GPU (stand-in for a CUDA kernel).
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 251) as u8).collect();
    cluster.write(&src.at(0), &payload);

    // tcaMemcpyPeer: GPU-to-GPU across two nodes, no MPI, no staging.
    let elapsed = cluster.memcpy_peer(&dst.at(0), &src.at(0), 1 << 20);
    assert_eq!(cluster.read(&dst.at(0), 1 << 20), payload);
    println!(
        "1 MiB GPU(node0) -> GPU(node2): {elapsed} ({:.3} GB/s)",
        (1u64 << 20) as f64 / elapsed.as_s_f64() / 1e9
    );

    // Short messages go through PIO: a store into the mmapped window.
    let flag = MemRef::host(3, 0x4000_0000);
    let pio = cluster.pio_put(0, &flag, &0xfeed_beefu32.to_le_bytes());
    assert_eq!(cluster.read(&flag, 4), 0xfeed_beefu32.to_le_bytes());
    println!("4 B PIO put node0 -> node3 host: {pio}");

    // Block-stride DMA: 16 rows of a 2-D tile, one chained activation.
    let host_src = MemRef::host(0, 0x4800_0000);
    for r in 0..16u64 {
        cluster.write(&MemRef::host(0, 0x4800_0000 + r * 1024), &[r as u8; 256]);
    }
    let strided = cluster.memcpy_peer_strided(
        &MemRef::host(1, 0x5000_0000),
        256, // packed at the destination
        &host_src,
        1024, // strided at the source
        256,
        16,
    );
    println!("16 x 256 B block-stride transfer: {strided}");
    for r in 0..16u64 {
        assert_eq!(
            cluster.read(&MemRef::host(1, 0x5000_0000 + r * 256), 256),
            vec![r as u8; 256]
        );
    }
    println!("all transfers verified byte-for-byte");
}
